//! Liveness watchdog: detects no-progress intervals and keeps a short
//! history of progress snapshots so a stall report shows the run-up, not
//! just the moment the threshold tripped.
//!
//! [`WatchdogCore`] is passive — it owns no thread. A driver (the chaos
//! scenario runner's existing watchdog loop) calls [`WatchdogCore::observe`]
//! on its own cadence with the current progress counter and a lazily built
//! detail string (typically `TransactionEngine::diagnostics()`: mailbox
//! depths, snapshot-queue lengths, in-flight confirmation state). The core
//! tracks when progress last advanced, samples the detail into a bounded
//! history at a coarser interval than the driver tick (diagnostics are not
//! free), and reports a stall once no progress was made for the configured
//! window.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Configuration of a [`WatchdogCore`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// No progress for this long flags the run as stalled.
    pub stall_after: Duration,
    /// Minimum interval between recorded history snapshots (the detail
    /// closure is only invoked when a snapshot is recorded).
    pub snapshot_every: Duration,
    /// Number of most-recent snapshots retained.
    pub history: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_after: Duration::from_secs(15),
            snapshot_every: Duration::from_millis(250),
            history: 8,
        }
    }
}

/// One recorded observation.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// Time since the watchdog was created.
    pub elapsed: Duration,
    /// The driver's progress counter at the time.
    pub progress: u64,
    /// How long progress had been flat at the time.
    pub flat_for: Duration,
    /// Driver-supplied detail (engine diagnostics).
    pub detail: String,
}

/// The verdict of one [`WatchdogCore::observe`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Progress advanced within the stall window.
    Progressing,
    /// No progress for at least the configured stall window.
    Stalled,
}

/// Passive stall detector with bounded snapshot history.
#[derive(Debug)]
pub struct WatchdogCore {
    config: WatchdogConfig,
    started: Instant,
    last_progress: Option<u64>,
    last_change: Instant,
    last_snapshot: Option<Instant>,
    history: VecDeque<ProgressSnapshot>,
}

impl WatchdogCore {
    /// Creates a watchdog; the stall clock starts now.
    pub fn new(config: WatchdogConfig) -> Self {
        let now = Instant::now();
        WatchdogCore {
            config,
            started: now,
            last_progress: None,
            last_change: now,
            last_snapshot: None,
            history: VecDeque::new(),
        }
    }

    /// Feeds the current progress counter. `detail` is invoked only when a
    /// history snapshot is due (at most once per `snapshot_every`), so the
    /// driver can pass an expensive diagnostics closure on every tick.
    pub fn observe(&mut self, progress: u64, detail: impl FnOnce() -> String) -> WatchdogVerdict {
        if self.last_progress != Some(progress) {
            self.last_progress = Some(progress);
            self.last_change = Instant::now();
        }
        let snapshot_due = self
            .last_snapshot
            .map_or(true, |t| t.elapsed() >= self.config.snapshot_every);
        if snapshot_due {
            self.last_snapshot = Some(Instant::now());
            self.history.push_back(ProgressSnapshot {
                elapsed: self.started.elapsed(),
                progress,
                flat_for: self.last_change.elapsed(),
                detail: detail(),
            });
            while self.history.len() > self.config.history.max(1) {
                self.history.pop_front();
            }
        }
        if self.last_change.elapsed() >= self.config.stall_after {
            WatchdogVerdict::Stalled
        } else {
            WatchdogVerdict::Progressing
        }
    }

    /// How long progress has currently been flat.
    pub fn flat_for(&self) -> Duration {
        self.last_change.elapsed()
    }

    /// The retained snapshots, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &ProgressSnapshot> {
        self.history.iter()
    }

    /// Renders the snapshot history as an indented report: the last N
    /// observations leading up to (and including) the stall.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "watchdog: {} progress snapshot(s), progress flat for {:.1?}:",
            self.history.len(),
            self.flat_for(),
        );
        for snap in &self.history {
            let _ = writeln!(
                out,
                "  [+{:>7.1?}] progress={} flat-for={:.1?}",
                snap.elapsed, snap.progress, snap.flat_for,
            );
            for line in snap.detail.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> WatchdogConfig {
        WatchdogConfig {
            stall_after: Duration::from_millis(30),
            snapshot_every: Duration::from_millis(1),
            history: 3,
        }
    }

    #[test]
    fn progressing_while_the_counter_moves() {
        let mut wd = WatchdogCore::new(fast_config());
        for i in 0..5 {
            assert_eq!(
                wd.observe(i, || format!("tick {i}")),
                WatchdogVerdict::Progressing
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(wd.history().count() <= 3, "history is bounded");
    }

    #[test]
    fn flat_progress_eventually_stalls_and_reports_history() {
        let mut wd = WatchdogCore::new(fast_config());
        wd.observe(7, || "first".to_string());
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut verdict = WatchdogVerdict::Progressing;
        while verdict == WatchdogVerdict::Progressing && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            verdict = wd.observe(7, || "node 0: mailbox depth=3".to_string());
        }
        assert_eq!(verdict, WatchdogVerdict::Stalled);
        let report = wd.report();
        assert!(report.contains("progress=7"));
        assert!(report.contains("    node 0: mailbox depth=3"));
        assert_eq!(wd.history().count(), 3, "keeps only the last N snapshots");
    }

    #[test]
    fn detail_is_lazy_between_snapshots() {
        let mut wd = WatchdogCore::new(WatchdogConfig {
            snapshot_every: Duration::from_secs(3600),
            ..fast_config()
        });
        wd.observe(0, || "sampled".to_string());
        let mut called = false;
        wd.observe(1, || {
            called = true;
            String::new()
        });
        assert!(!called, "second snapshot not due for an hour");
        assert_eq!(wd.history().count(), 1);
    }
}
