//! Liveness watchdog: detects no-progress intervals and keeps a short
//! history of progress snapshots so a stall report shows the run-up, not
//! just the moment the threshold tripped.
//!
//! [`WatchdogCore`] is passive — it owns no thread. A driver (the chaos
//! scenario runner's existing watchdog loop) calls [`WatchdogCore::observe`]
//! on its own cadence with the current progress counter and a lazily built
//! detail string (typically `TransactionEngine::diagnostics()`: mailbox
//! depths, snapshot-queue lengths, in-flight confirmation state). The core
//! tracks when progress last advanced, samples the detail into a bounded
//! history at a coarser interval than the driver tick (diagnostics are not
//! free), and reports a stall once no progress was made for the configured
//! window.

use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

/// Liveness of one node at observation time, as reported by the engine.
///
/// A stall report that shows every node `alive` points at a genuine
/// protocol livelock; one that shows a node `crashed` or `paused` points at
/// the fault plan (a crash window still open, a pause window still active,
/// or a restart whose recovery round has not completed) — a very different
/// debugging path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLiveness {
    /// The node is up and its mailbox is draining.
    Alive,
    /// The node's mailbox delivery is paused by a fault window.
    Paused,
    /// The node is crash-stopped, or restarted but still recovering.
    Crashed,
}

impl fmt::Display for NodeLiveness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeLiveness::Alive => "alive",
            NodeLiveness::Paused => "paused",
            NodeLiveness::Crashed => "crashed",
        })
    }
}

/// Configuration of a [`WatchdogCore`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// No progress for this long flags the run as stalled.
    pub stall_after: Duration,
    /// Minimum interval between recorded history snapshots (the detail
    /// closure is only invoked when a snapshot is recorded).
    pub snapshot_every: Duration,
    /// Number of most-recent snapshots retained.
    pub history: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_after: Duration::from_secs(15),
            snapshot_every: Duration::from_millis(250),
            history: 8,
        }
    }
}

/// One recorded observation.
#[derive(Debug, Clone)]
pub struct ProgressSnapshot {
    /// Time since the watchdog was created.
    pub elapsed: Duration,
    /// The driver's progress counter at the time.
    pub progress: u64,
    /// How long progress had been flat at the time.
    pub flat_for: Duration,
    /// Driver-supplied detail (engine diagnostics).
    pub detail: String,
    /// Per-node liveness at observation time, indexed by node. Empty when
    /// the driver has no liveness source (engines without introspection).
    pub nodes: Vec<NodeLiveness>,
}

/// The verdict of one [`WatchdogCore::observe`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Progress advanced within the stall window.
    Progressing,
    /// No progress for at least the configured stall window.
    Stalled,
}

/// Passive stall detector with bounded snapshot history.
#[derive(Debug)]
pub struct WatchdogCore {
    config: WatchdogConfig,
    started: Instant,
    last_progress: Option<u64>,
    last_change: Instant,
    last_snapshot: Option<Instant>,
    history: VecDeque<ProgressSnapshot>,
}

impl WatchdogCore {
    /// Creates a watchdog; the stall clock starts now.
    pub fn new(config: WatchdogConfig) -> Self {
        let now = Instant::now();
        WatchdogCore {
            config,
            started: now,
            last_progress: None,
            last_change: now,
            last_snapshot: None,
            history: VecDeque::new(),
        }
    }

    /// Feeds the current progress counter. `detail` is invoked only when a
    /// history snapshot is due (at most once per `snapshot_every`), so the
    /// driver can pass an expensive diagnostics closure on every tick.
    pub fn observe(&mut self, progress: u64, detail: impl FnOnce() -> String) -> WatchdogVerdict {
        self.observe_with(progress, detail, Vec::new)
    }

    /// [`WatchdogCore::observe`] with a per-node liveness source. Like
    /// `detail`, `liveness` is invoked lazily, only when a history snapshot
    /// is due; the statuses let [`WatchdogCore::report`] distinguish a
    /// crashed or paused node from a genuine livelock.
    pub fn observe_with(
        &mut self,
        progress: u64,
        detail: impl FnOnce() -> String,
        liveness: impl FnOnce() -> Vec<NodeLiveness>,
    ) -> WatchdogVerdict {
        if self.last_progress != Some(progress) {
            self.last_progress = Some(progress);
            self.last_change = Instant::now();
        }
        let snapshot_due = self
            .last_snapshot
            .map_or(true, |t| t.elapsed() >= self.config.snapshot_every);
        if snapshot_due {
            self.last_snapshot = Some(Instant::now());
            self.history.push_back(ProgressSnapshot {
                elapsed: self.started.elapsed(),
                progress,
                flat_for: self.last_change.elapsed(),
                detail: detail(),
                nodes: liveness(),
            });
            while self.history.len() > self.config.history.max(1) {
                self.history.pop_front();
            }
        }
        if self.last_change.elapsed() >= self.config.stall_after {
            WatchdogVerdict::Stalled
        } else {
            WatchdogVerdict::Progressing
        }
    }

    /// How long progress has currently been flat.
    pub fn flat_for(&self) -> Duration {
        self.last_change.elapsed()
    }

    /// The retained snapshots, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &ProgressSnapshot> {
        self.history.iter()
    }

    /// Renders the snapshot history as an indented report: the last N
    /// observations leading up to (and including) the stall, each with the
    /// per-node liveness it observed, plus a one-line classification —
    /// `suspect: ...` when any node was crashed or paused at the latest
    /// snapshot (the stall is then explained by the fault plan, not by a
    /// protocol livelock).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "watchdog: {} progress snapshot(s), progress flat for {:.1?}:",
            self.history.len(),
            self.flat_for(),
        );
        if let Some(latest) = self.history.back() {
            let down: Vec<String> = latest
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, status)| **status != NodeLiveness::Alive)
                .map(|(index, status)| format!("node {index} {status}"))
                .collect();
            if down.is_empty() {
                if !latest.nodes.is_empty() {
                    let _ = writeln!(
                        out,
                        "  suspect: livelock — every node alive, progress flat anyway"
                    );
                }
            } else {
                let _ = writeln!(
                    out,
                    "  suspect: fault plan — {} (not a livelock)",
                    down.join(", ")
                );
            }
        }
        for snap in &self.history {
            let _ = write!(
                out,
                "  [+{:>7.1?}] progress={} flat-for={:.1?}",
                snap.elapsed, snap.progress, snap.flat_for,
            );
            if snap.nodes.is_empty() {
                let _ = writeln!(out);
            } else {
                let statuses: Vec<String> = snap.nodes.iter().map(ToString::to_string).collect();
                let _ = writeln!(out, " nodes=[{}]", statuses.join(","));
            }
            for line in snap.detail.lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> WatchdogConfig {
        WatchdogConfig {
            stall_after: Duration::from_millis(30),
            snapshot_every: Duration::from_millis(1),
            history: 3,
        }
    }

    #[test]
    fn progressing_while_the_counter_moves() {
        let mut wd = WatchdogCore::new(fast_config());
        for i in 0..5 {
            assert_eq!(
                wd.observe(i, || format!("tick {i}")),
                WatchdogVerdict::Progressing
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(wd.history().count() <= 3, "history is bounded");
    }

    #[test]
    fn flat_progress_eventually_stalls_and_reports_history() {
        let mut wd = WatchdogCore::new(fast_config());
        wd.observe(7, || "first".to_string());
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut verdict = WatchdogVerdict::Progressing;
        while verdict == WatchdogVerdict::Progressing && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            verdict = wd.observe(7, || "node 0: mailbox depth=3".to_string());
        }
        assert_eq!(verdict, WatchdogVerdict::Stalled);
        let report = wd.report();
        assert!(report.contains("progress=7"));
        assert!(report.contains("    node 0: mailbox depth=3"));
        assert_eq!(wd.history().count(), 3, "keeps only the last N snapshots");
    }

    #[test]
    fn report_blames_the_fault_plan_when_a_node_is_down() {
        let mut wd = WatchdogCore::new(fast_config());
        wd.observe_with(
            3,
            || "node 1: mailbox depth=9".to_string(),
            || {
                vec![
                    NodeLiveness::Alive,
                    NodeLiveness::Crashed,
                    NodeLiveness::Paused,
                ]
            },
        );
        let report = wd.report();
        assert!(
            report.contains("suspect: fault plan — node 1 crashed, node 2 paused"),
            "unexpected report: {report}"
        );
        assert!(report.contains("nodes=[alive,crashed,paused]"));
    }

    #[test]
    fn report_blames_livelock_when_every_node_is_alive() {
        let mut wd = WatchdogCore::new(fast_config());
        wd.observe_with(3, String::new, || {
            vec![NodeLiveness::Alive, NodeLiveness::Alive]
        });
        let report = wd.report();
        assert!(
            report.contains("suspect: livelock"),
            "unexpected report: {report}"
        );
    }

    #[test]
    fn report_stays_unclassified_without_a_liveness_source() {
        let mut wd = WatchdogCore::new(fast_config());
        wd.observe(3, || "plain".to_string());
        let report = wd.report();
        assert!(!report.contains("suspect:"), "unexpected report: {report}");
        assert!(!report.contains("nodes=["));
    }

    #[test]
    fn detail_is_lazy_between_snapshots() {
        let mut wd = WatchdogCore::new(WatchdogConfig {
            snapshot_every: Duration::from_secs(3600),
            ..fast_config()
        });
        wd.observe(0, || "sampled".to_string());
        let mut called = false;
        wd.observe(1, || {
            called = true;
            String::new()
        });
        assert!(!called, "second snapshot not due for an hour");
        assert_eq!(wd.history().count(), 1);
    }
}
