//! A read-dominated "bank" workload: many concurrent transfer transactions
//! move money between accounts while auditors continuously run long
//! read-only transactions that sum every balance.
//!
//! Because SSS read-only transactions are abort-free *and* observe a
//! consistent, externally-consistent snapshot, every audit must see exactly
//! the same total amount of money, no matter how many transfers are in
//! flight. This is the style of invariant the paper's Statement 2 and 3
//! (§IV) guarantee.
//!
//! Run with: `cargo run --example bank_audit`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use sss::core::{SssCluster, SssConfig};
use sss::storage::Value;

const ACCOUNTS: usize = 32;
const INITIAL_BALANCE: u64 = 1_000;

fn account_key(i: usize) -> String {
    format!("account:{i}")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(SssCluster::start(SssConfig::new(4).replication(2))?);

    // Fund every account.
    let setup = cluster.session(0);
    let mut funding = setup.begin_update();
    for i in 0..ACCOUNTS {
        funding.write(account_key(i), Value::from_u64(INITIAL_BALANCE));
    }
    funding.commit()?;
    let expected_total = (ACCOUNTS as u64) * INITIAL_BALANCE;

    let stop = Arc::new(AtomicBool::new(false));

    // Transfer clients: read two accounts, move some money, commit. Aborted
    // transfers (validation conflicts) are simply retried by the loop.
    let mut workers = Vec::new();
    for worker in 0..3usize {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        workers.push(thread::spawn(move || {
            let session = cluster.session(worker % cluster.node_count());
            let mut transfers = 0u64;
            let mut aborts = 0u64;
            let mut rng = worker;
            while !stop.load(Ordering::Relaxed) {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(worker + 1);
                let from = rng % ACCOUNTS;
                let to = (rng / ACCOUNTS) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let mut txn = session.begin_update();
                let read = |v: Option<Value>| v.and_then(|v| v.to_u64()).unwrap_or(0);
                let Ok(balance_from) = txn.read(account_key(from)).map(read) else {
                    continue;
                };
                let Ok(balance_to) = txn.read(account_key(to)).map(read) else {
                    continue;
                };
                // Never withdraw more than the account holds (an empty
                // account simply skips its turn).
                let amount = (1 + rng as u64 % 10).min(balance_from);
                if amount == 0 {
                    continue;
                }
                txn.write(account_key(from), Value::from_u64(balance_from - amount));
                txn.write(account_key(to), Value::from_u64(balance_to + amount));
                match txn.commit() {
                    Ok(_) => transfers += 1,
                    Err(e) if e.is_abort() => aborts += 1,
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            (transfers, aborts)
        }));
    }

    // Auditor: a long read-only transaction summing every account.
    let auditor_cluster = Arc::clone(&cluster);
    let auditor_stop = Arc::clone(&stop);
    let auditor = thread::spawn(move || -> Result<u64, String> {
        let session = auditor_cluster.session(1);
        let mut audits = 0u64;
        while !auditor_stop.load(Ordering::Relaxed) {
            let mut audit = session.begin_read_only();
            let mut total = 0u64;
            for i in 0..ACCOUNTS {
                total += audit
                    .read(account_key(i))
                    .map_err(|e| e.to_string())?
                    .and_then(|v| v.to_u64())
                    .unwrap_or(0);
            }
            audit.commit().map_err(|e| e.to_string())?;
            assert_eq!(
                total, expected_total,
                "audit {audits} observed an inconsistent snapshot"
            );
            audits += 1;
        }
        Ok(audits)
    });

    thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);

    let mut total_transfers = 0;
    let mut total_aborts = 0;
    for w in workers {
        let (transfers, aborts) = w.join().expect("transfer worker panicked");
        total_transfers += transfers;
        total_aborts += aborts;
    }
    let audits = auditor.join().expect("auditor panicked")?;

    println!("committed transfers: {total_transfers} (aborted attempts: {total_aborts})");
    println!("consistent audits:   {audits} — every one summed to {expected_total}");
    println!(
        "snapshot-queue entries left: {}",
        cluster.snapshot_queue_entries()
    );

    cluster.shutdown();
    Ok(())
}
