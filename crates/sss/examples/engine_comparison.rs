//! Runs the same small YCSB-style workload against SSS and the three
//! competitor engines from the paper's evaluation (2PC-baseline, Walter,
//! ROCOCO) and prints a side-by-side summary — a miniature version of the
//! paper's Figure 3 / Figure 6 experiments.
//!
//! Every engine is constructed through the engine layer's registry
//! (`EngineKind::build`) and driven by the engine-agnostic closed-loop
//! driver: the example contains no engine-specific code at all.
//!
//! Run with: `cargo run --release --example engine_comparison`

use std::time::Duration;

use sss::engine::{EngineKind, NetProfile};
use sss::workload::{populate, run_workload, KeySelection, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec::new(4)
        .clients_per_node(4)
        .total_keys(1_024)
        .read_only_percent(80)
        .key_selection(KeySelection::Uniform)
        .duration(Duration::from_millis(400));

    println!(
        "workload: {} nodes, {} clients/node, {} keys, {}% read-only\n",
        spec.nodes, spec.clients_per_node, spec.total_keys, spec.read_only_percent
    );
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12}",
        "engine", "commits/s", "abort%", "committed", "p99 (µs)"
    );
    for kind in EngineKind::ALL {
        // Replication 2 for the replicated engines; ROCOCO ignores the
        // degree (the paper always compares it without replication).
        let engine = kind.build(spec.nodes, 2, NetProfile::Instant);
        populate(engine.as_ref(), &spec);
        let report = run_workload(engine.as_ref(), &spec);
        println!(
            "{:<8} {:>12.0} {:>9.1}% {:>12} {:>12.0}",
            report.engine,
            report.throughput(),
            report.abort_rate() * 100.0,
            report.committed,
            report.latency.p99.as_secs_f64() * 1e6,
        );
    }
    println!(
        "\nFor the full evaluation sweeps run: cargo run -p sss-bench --release --bin all_figures"
    );
}
