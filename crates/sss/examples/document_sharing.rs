//! The motivating scenario of the paper's introduction: an online document
//! sharing service with two clients on different nodes.
//!
//! Client C1 (on node N1) edits a shared document and synchronizes it. As
//! soon as C1 is told that its synchronization completed, it tells C2
//! (connected to another node N2) out-of-band — outside the store's APIs —
//! that the edit is permanent. C2 then synchronizes too and, because SSS is
//! *external consistent*, C2 is guaranteed to observe C1's modification: a
//! transaction that returned to its client serializes before every
//! transaction that returns afterwards, no matter which node it ran on.
//!
//! Run with: `cargo run --example document_sharing`

use std::sync::mpsc;
use std::thread;

use sss::core::{SssCluster, SssConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = SssCluster::start(SssConfig::new(4).replication(2))?;

    // Initial version of the shared document.
    let setup = cluster.session(0);
    let mut init = setup.begin_update();
    init.write("doc:readme", "v1: first draft");
    init.commit()?;

    // The out-of-band channel the two clients use to talk to each other
    // (e.g. a chat message saying "my edit is saved").
    let (notify_c2, c1_is_done) = mpsc::channel::<()>();

    let c1_session = cluster.session(0);
    let c2_session = cluster.session(3);

    let c1 = thread::spawn(
        move || -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
            // C1 edits the document and synchronizes (commits).
            let mut edit = c1_session.begin_update();
            edit.write("doc:readme", "v2: edited by C1");
            edit.commit()?;
            // Only *after* the commit returned does C1 tell C2 about it.
            notify_c2.send(()).expect("C2 went away");
            Ok(())
        },
    );

    let c2 = thread::spawn(
        move || -> Result<String, Box<dyn std::error::Error + Send + Sync>> {
            // C2 waits for C1's out-of-band message...
            c1_is_done.recv().expect("C1 went away");
            // ...and then synchronizes. External consistency guarantees the edit
            // is visible, even though C2 talks to a different node.
            let mut sync = c2_session.begin_read_only();
            let content = sync
                .read("doc:readme")?
                .and_then(|v| v.as_utf8().map(str::to_owned))
                .unwrap_or_default();
            sync.commit()?;
            Ok(content)
        },
    );

    c1.join().expect("C1 panicked").map_err(|e| e.to_string())?;
    let seen_by_c2 = c2.join().expect("C2 panicked").map_err(|e| e.to_string())?;

    println!("C2 observed: {seen_by_c2:?}");
    assert_eq!(
        seen_by_c2, "v2: edited by C1",
        "external consistency guarantees C2 sees C1's committed edit"
    );
    println!("external consistency held: C2 observed C1's edit");

    cluster.shutdown();
    Ok(())
}
