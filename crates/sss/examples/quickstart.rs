//! Quickstart: boot an SSS cluster, run an update transaction and an
//! abort-free read-only transaction, and inspect the latency split between
//! internal and external commit.
//!
//! Run with: `cargo run --example quickstart`

use sss::core::{SssCluster, SssConfig};
use sss::storage::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node cluster; every key is replicated on 2 nodes, as in the
    // paper's evaluation.
    let cluster = SssCluster::start(SssConfig::new(4).replication(2))?;

    // Clients are colocated with nodes: open one session on node 0 and one
    // on node 2 to show that visibility is cluster-wide.
    let writer = cluster.session(0);
    let reader = cluster.session(2);

    // An update transaction: reads observe the most recent committed
    // versions, writes are buffered and installed atomically via 2PC.
    let mut txn = writer.begin_update();
    txn.write("user:42:name", "Ada Lovelace");
    txn.write("user:42:balance", Value::from_u64(1_000));
    let info = txn.commit()?;
    println!(
        "update committed: internal {:?}, external {:?} (pre-commit wait {:?})",
        info.internal_latency,
        info.external_latency,
        info.pre_commit_wait()
    );

    // A read-only transaction from another node: never aborts, and because
    // SSS is external consistent it must observe the update that already
    // returned to its client.
    let mut ro = reader.begin_read_only();
    let name = ro.read("user:42:name")?;
    let balance = ro.read("user:42:balance")?.and_then(|v| v.to_u64());
    ro.commit()?;
    println!(
        "read-only observed name={:?} balance={:?}",
        name.and_then(|v| v.as_utf8().map(str::to_owned)),
        balance
    );
    assert_eq!(balance, Some(1_000));

    // Read-modify-write: update transactions validate their reads at commit
    // time, so a concurrent overwrite would abort (and the client retries).
    let mut deposit = writer.begin_update();
    let current = deposit
        .read("user:42:balance")?
        .and_then(|v| v.to_u64())
        .unwrap_or(0);
    deposit.write("user:42:balance", Value::from_u64(current + 500));
    deposit.commit()?;

    let mut audit = reader.begin_read_only();
    let final_balance = audit.read("user:42:balance")?.and_then(|v| v.to_u64());
    audit.commit()?;
    println!("balance after deposit: {final_balance:?}");
    assert_eq!(final_balance, Some(1_500));

    println!("cluster stats: {:?}", cluster.stats().totals);
    cluster.shutdown();
    Ok(())
}
