//! # SSS — Scalable key-value store with external consistent, abort-free read-only transactions
//!
//! This is the facade crate of the SSS reproduction workspace. It re-exports
//! the public API of every sub-crate so downstream users can depend on a
//! single crate:
//!
//! * [`core`] — the SSS distributed concurrency control (the paper's
//!   contribution): vector-clock based visibility, snapshot-queuing,
//!   internal/pre/external commit, abort-free read-only transactions.
//! * [`baselines`] — the competitors evaluated by the paper: a 2PC baseline,
//!   a Walter-style PSI engine, and a ROCOCO-style dependency-tracking engine.
//! * [`engine`] — the engine layer: the `TransactionEngine` trait surface
//!   and the `EngineKind` registry through which every engine (SSS and the
//!   baselines alike) is constructed.
//! * [`net`] — the in-process message-passing substrate (priority queues,
//!   latency injection) every engine runs on.
//! * [`faults`] — deterministic fault injection: seeded fault plans (delay
//!   spikes, jitter, reordering, duplication, transient partitions, node
//!   pauses) interposed on the transport; the chaos-scenario layer in
//!   [`workload`] runs them with post-run consistency verification.
//! * [`storage`] — multi-version and single-version node-local stores, lock
//!   table, replica placement.
//! * [`workload`] — YCSB-style closed-loop workload generator and driver.
//! * [`consistency`] — history recording and external-consistency checking.
//!
//! ## Quickstart
//!
//! ```rust
//! use sss::core::{SssCluster, SssConfig};
//! use sss::storage::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 3-node cluster, every key replicated on 2 nodes.
//! let cluster = SssCluster::start(SssConfig::new(3).replication(2))?;
//!
//! // Clients are colocated with nodes; open a session on node 0.
//! let session = cluster.session(0);
//!
//! // Update transaction.
//! let mut txn = session.begin_update();
//! txn.write("answer", b"42".to_vec());
//! txn.commit()?;
//!
//! // Abort-free read-only transaction.
//! let mut ro = session.begin_read_only();
//! assert_eq!(ro.read("answer")?, Some(Value::from(&b"42"[..])));
//! ro.commit()?;
//! cluster.shutdown();
//! # Ok(())
//! # }
//! ```

pub use sss_baselines as baselines;
pub use sss_consistency as consistency;
pub use sss_core as core;
pub use sss_engine as engine;
pub use sss_faults as faults;
pub use sss_net as net;
pub use sss_storage as storage;
pub use sss_vclock as vclock;
pub use sss_workload as workload;
