//! End-to-end external-consistency tests for the SSS engine, checked with
//! the engine-agnostic DSG/ snapshot checker from `sss-consistency`.
//!
//! These tests reproduce, at small scale, the guarantees the paper proves in
//! §IV: committed update transactions are externally consistent
//! (Statement 1), a read-only transaction observes a consistent atomic
//! snapshot (Statement 2), and all read-only transactions observe prefixes
//! of a single sequence of update transactions (Statement 3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss::consistency::{
    check_all, check_external_consistency, History, HistoryRecorder, ReadRecord, TxnKind,
    TxnRecord, WriteRecord,
};
use sss::core::{SssCluster, SssConfig};
use sss::storage::{Key, TxnId, Value};

fn key(i: usize) -> Key {
    Key::new(format!("k{i}"))
}

/// Encodes a writer transaction id into the stored value so the checker can
/// attribute observed versions.
fn encode(txn: TxnId, counter: u64) -> Value {
    Value::new(format!("{}:{}:{}", txn.origin.index(), txn.seq, counter).into_bytes())
}

fn decode(value: &Value) -> Option<TxnId> {
    let text = value.as_utf8()?;
    let mut parts = text.split(':');
    let origin: usize = parts.next()?.parse().ok()?;
    let seq: u64 = parts.next()?.parse().ok()?;
    Some(TxnId::new(sss::vclock::NodeId(origin), seq))
}

/// Runs a mixed workload of update and read-only transactions against an SSS
/// cluster, recording the history, and returns it.
fn run_recorded_workload(
    nodes: usize,
    keys: usize,
    writers: usize,
    readers: usize,
    duration: Duration,
) -> History {
    let cluster = Arc::new(
        SssCluster::start(SssConfig::new(nodes).replication(2.min(nodes))).expect("cluster start"),
    );
    let recorder = Arc::new(HistoryRecorder::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Seed every key so that the first observations are attributable.
    let seeder = cluster.session(0);
    let mut seed_txn = seeder.begin_update();
    let seed_id = seed_txn.id();
    let mut seed_writes = Vec::new();
    for i in 0..keys {
        let value = encode(seed_id, i as u64);
        seed_txn.write(key(i), value.clone());
        seed_writes.push(WriteRecord { key: key(i), value });
    }
    let seed_started = Instant::now();
    seed_txn.commit().expect("seed commit");
    recorder.record(TxnRecord {
        id: seed_id,
        kind: TxnKind::Update,
        started: seed_started,
        finished: Instant::now(),
        reads: Vec::new(),
        writes: seed_writes,
    });

    std::thread::scope(|scope| {
        for w in 0..writers {
            let cluster = Arc::clone(&cluster);
            let recorder = Arc::clone(&recorder);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let session = cluster.session(w % nodes);
                let mut rng: u64 = 0x9E3779B97F4A7C15 ^ (w as u64);
                let mut counter = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (rng % keys as u64) as usize;
                    let b = ((rng >> 16) % keys as u64) as usize;
                    if a == b {
                        continue;
                    }
                    let started = Instant::now();
                    let mut txn = session.begin_update();
                    let id = txn.id();
                    let Ok(va) = txn.read(key(a)) else { continue };
                    let Ok(vb) = txn.read(key(b)) else { continue };
                    counter += 1;
                    let wa = encode(id, counter);
                    let wb = encode(id, counter + 1);
                    txn.write(key(a), wa.clone());
                    txn.write(key(b), wb.clone());
                    if txn.commit().is_ok() {
                        recorder.record(TxnRecord {
                            id,
                            kind: TxnKind::Update,
                            started,
                            finished: Instant::now(),
                            reads: vec![
                                ReadRecord {
                                    key: key(a),
                                    observed_writer: va.as_ref().and_then(decode),
                                    value: va,
                                },
                                ReadRecord {
                                    key: key(b),
                                    observed_writer: vb.as_ref().and_then(decode),
                                    value: vb,
                                },
                            ],
                            writes: vec![
                                WriteRecord {
                                    key: key(a),
                                    value: wa,
                                },
                                WriteRecord {
                                    key: key(b),
                                    value: wb,
                                },
                            ],
                        });
                    }
                }
            });
        }
        for r in 0..readers {
            let cluster = Arc::clone(&cluster);
            let recorder = Arc::clone(&recorder);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let session = cluster.session((r + 1) % nodes);
                let mut rng: u64 = 0xD1B54A32D192ED03 ^ (r as u64);
                while !stop.load(Ordering::Relaxed) {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let started = Instant::now();
                    let mut txn = session.begin_read_only();
                    let id = txn.id();
                    let mut reads = Vec::new();
                    let count = 2 + (rng % 3) as usize;
                    let mut ok = true;
                    for j in 0..count {
                        let k = ((rng >> (8 * j)) % keys as u64) as usize;
                        match txn.read(key(k)) {
                            Ok(value) => reads.push(ReadRecord {
                                key: key(k),
                                observed_writer: value.as_ref().and_then(decode),
                                value,
                            }),
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && txn.commit().is_ok() {
                        recorder.record(TxnRecord {
                            id,
                            kind: TxnKind::ReadOnly,
                            started,
                            finished: Instant::now(),
                            reads,
                            writes: Vec::new(),
                        });
                    }
                }
            });
        }
        let stop_timer = Arc::clone(&stop);
        scope.spawn(move || {
            std::thread::sleep(duration);
            stop_timer.store(true, Ordering::Relaxed);
        });
    });

    // All snapshot-queue entries must have been garbage-collected by the
    // Remove messages once the system quiesces.
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.snapshot_queue_entries() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        cluster.snapshot_queue_entries(),
        0,
        "snapshot queues must drain once the workload stops"
    );

    cluster.shutdown();
    Arc::try_unwrap(recorder)
        .expect("all recorder clones dropped")
        .into_history()
}

#[test]
fn concurrent_history_is_externally_consistent() {
    let history = run_recorded_workload(4, 24, 3, 2, Duration::from_millis(400));
    assert!(history.len() > 50, "workload produced too few transactions");
    check_all(&history)
        .unwrap_or_else(|violation| panic!("SSS produced an inconsistent history: {violation}"));
}

#[test]
fn single_node_cluster_is_consistent() {
    let history = run_recorded_workload(1, 8, 2, 1, Duration::from_millis(150));
    assert!(history.len() > 10);
    check_external_consistency(&history)
        .unwrap_or_else(|violation| panic!("inconsistent: {violation}"));
}

#[test]
fn write_skew_is_prevented_between_update_transactions() {
    // Classic write-skew: two transactions each read both keys and write one
    // of them. Under serializability at most one of two overlapping
    // transactions may commit if they would produce skew; here we just check
    // the invariant x + y >= 0 is never violated with constraint-style
    // withdrawals.
    let cluster = SssCluster::start(SssConfig::new(2)).expect("start");
    let session = cluster.session(0);
    let mut init = session.begin_update();
    init.write("x", Value::from_u64(50));
    init.write("y", Value::from_u64(50));
    init.commit().expect("init");

    let barrier = Arc::new(std::sync::Barrier::new(2));
    let results: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = ["x", "y"]
            .into_iter()
            .map(|withdraw_from| {
                let cluster = &cluster;
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let session = cluster.session(0);
                    let mut txn = session.begin_update();
                    let x = txn.read("x").unwrap().and_then(|v| v.to_u64()).unwrap();
                    let y = txn.read("y").unwrap().and_then(|v| v.to_u64()).unwrap();
                    barrier.wait();
                    // Withdraw 80 only if the combined balance allows it.
                    if x + y >= 80 {
                        let current = if withdraw_from == "x" { x } else { y };
                        txn.write(withdraw_from, Value::from_u64(current.saturating_sub(80)));
                        txn.commit().is_ok()
                    } else {
                        false
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // At most one of the two conflicting withdrawals may commit: both
    // committing would require each to have missed the other's write.
    let committed = results.iter().filter(|ok| **ok).count();
    assert!(committed <= 1, "write skew: both withdrawals committed");

    let mut check = session.begin_read_only();
    let x = check.read("x").unwrap().and_then(|v| v.to_u64()).unwrap();
    let y = check.read("y").unwrap().and_then(|v| v.to_u64()).unwrap();
    check.commit().unwrap();
    assert!(x + y >= 20, "combined balance went negative: {x} + {y}");
    cluster.shutdown();
}
