//! Tests of the headline SSS property: read-only transactions never abort
//! due to concurrency, and update transactions delay only their *client
//! response* (external commit), not the visibility of their writes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sss::core::{SssCluster, SssConfig, SssError};
use sss::storage::Value;

#[test]
fn read_only_transactions_never_abort_under_write_pressure() {
    let cluster = Arc::new(SssCluster::start(SssConfig::new(3).replication(2)).unwrap());
    let keys: Vec<String> = (0..16).map(|i| format!("item{i}")).collect();

    // Seed.
    let session = cluster.session(0);
    let mut seed = session.begin_update();
    for k in &keys {
        seed.write(k.as_str(), Value::from_u64(0));
    }
    seed.commit().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let read_only_attempts = Arc::new(AtomicU64::new(0));
    let read_only_failures = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Heavy writers.
        for w in 0..3usize {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            let keys = keys.clone();
            scope.spawn(move || {
                let session = cluster.session(w % 3);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let k = &keys[(i as usize * (w + 3)) % keys.len()];
                    let mut txn = session.begin_update();
                    if txn.read(k.as_str()).is_err() {
                        continue;
                    }
                    txn.write(k.as_str(), Value::from_u64(i));
                    let _ = txn.commit();
                }
            });
        }
        // Read-only clients: every attempt must succeed.
        for r in 0..2usize {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            let keys = keys.clone();
            let attempts = Arc::clone(&read_only_attempts);
            let failures = Arc::clone(&read_only_failures);
            scope.spawn(move || {
                let session = cluster.session((r + 1) % 3);
                while !stop.load(Ordering::Relaxed) {
                    attempts.fetch_add(1, Ordering::Relaxed);
                    let mut txn = session.begin_read_only();
                    let mut ok = true;
                    for k in keys.iter().take(8) {
                        match txn.read(k.as_str()) {
                            Ok(_) => {}
                            Err(SssError::Aborted(_)) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                                ok = false;
                                break;
                            }
                            Err(other) => panic!("read-only read failed: {other}"),
                        }
                    }
                    if ok && txn.commit().is_err() {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let stop_timer = Arc::clone(&stop);
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            stop_timer.store(true, Ordering::Relaxed);
        });
    });

    let attempts = read_only_attempts.load(Ordering::Relaxed);
    let failures = read_only_failures.load(Ordering::Relaxed);
    assert!(attempts > 20, "too few read-only attempts: {attempts}");
    assert_eq!(failures, 0, "read-only transactions must never abort");
    cluster.shutdown();
}

#[test]
fn update_transaction_waits_for_concurrent_reader_before_external_commit() {
    // Reproduces the paper's Figure 1: a read-only transaction T1 reads `y`,
    // then an update transaction T2 overwrites `y` and commits. T2's client
    // response (external commit) must be delayed until T1 returns, so its
    // measured pre-commit wait must cover the window during which T1 was
    // still open.
    let cluster = SssCluster::start(SssConfig::new(2).replication(1)).unwrap();
    let session0 = cluster.session(0);
    let session1 = cluster.session(1);

    let mut init = session0.begin_update();
    init.write("y", Value::from_u64(0));
    init.commit().unwrap();

    // T1 (read-only) reads y and stays open.
    let mut t1 = session1.begin_read_only();
    assert_eq!(t1.read("y").unwrap().and_then(|v| v.to_u64()), Some(0));

    // T2 overwrites y on another node, concurrently with T1.
    let hold = Duration::from_millis(120);
    let writer = std::thread::spawn(move || {
        let mut t2 = session0.begin_update();
        t2.write("y", Value::from_u64(1));
        t2.commit().expect("T2 commits")
    });

    // Keep T1 open for a while, then finish it (sending the Remove).
    std::thread::sleep(hold);
    t1.commit().unwrap();

    let info = writer.join().unwrap();
    assert!(
        info.pre_commit_wait() >= hold / 2,
        "T2 should have been held in its Pre-Commit phase while T1 was open \
         (waited {:?}, expected at least {:?})",
        info.pre_commit_wait(),
        hold / 2
    );

    // After both returned, the new value is visible everywhere.
    let mut check = cluster.session(1).begin_read_only();
    assert_eq!(check.read("y").unwrap().and_then(|v| v.to_u64()), Some(1));
    check.commit().unwrap();
    cluster.shutdown();
}

#[test]
fn internally_committed_writes_are_visible_before_external_commit() {
    // The snapshot-queue technique "permits a transaction that is in a
    // snapshot-queue to expose its written keys to other transactions while
    // it is waiting" (paper §I). A second update transaction must be able to
    // read and overwrite the held transaction's write before the first one
    // externally commits.
    let cluster = SssCluster::start(SssConfig::new(2).replication(1)).unwrap();
    let session = cluster.session(0);

    let mut init = session.begin_update();
    init.write("x", Value::from_u64(1));
    init.commit().unwrap();

    // A read-only transaction pins x so the next writer is held.
    let mut reader = cluster.session(1).begin_read_only();
    assert!(reader.read("x").unwrap().is_some());

    // Writer A overwrites x; its external commit will be delayed by the
    // open reader, so run it in a background thread.
    let session_a = cluster.session(0);
    let writer_a = std::thread::spawn(move || {
        let mut a = session_a.begin_update();
        a.write("x", Value::from_u64(2));
        a.commit().expect("A commits")
    });

    // Give A time to internally commit while the reader still holds it.
    std::thread::sleep(Duration::from_millis(50));

    // Writer B must already observe A's write (internal commit exposes it)
    // even though A is still being held in the snapshot-queue by the reader.
    let mut b = session.begin_update();
    let observed = b.read("x").unwrap().and_then(|v| v.to_u64());
    assert_eq!(
        observed,
        Some(2),
        "a subsequent transaction must see the internally committed write"
    );
    b.write("x", Value::from_u64(3));

    // Let the reader finish before committing B: B overwrites the key the
    // reader pinned, so its own external commit would otherwise also wait.
    reader.commit().unwrap();

    // B may abort if it raced A's installation; retry once for robustness.
    if b.commit().is_err() {
        let mut retry = session.begin_update();
        retry.read("x").unwrap();
        retry.write("x", Value::from_u64(3));
        retry.commit().expect("retry of B commits");
    }

    let info = writer_a.join().unwrap();
    assert!(info.external_latency >= info.internal_latency);

    let mut check = session.begin_read_only();
    assert_eq!(check.read("x").unwrap().and_then(|v| v.to_u64()), Some(3));
    check.commit().unwrap();
    cluster.shutdown();
}
