//! End-to-end smoke of the fault-injection wiring through the core API:
//! a cluster built from `SssConfig::faults` keeps its guarantees while the
//! plan delays, duplicates and pauses, and shutdown stays clean.

use std::time::Duration;

use sss::core::{SssCluster, SssConfig};
use sss::faults::{FaultPlan, LinkFault, LinkSelector};
use sss::storage::Value;

#[test]
fn faulted_cluster_serves_transactions_and_shuts_down_cleanly() {
    let plan = FaultPlan::new(17)
        .link_fault(
            LinkFault::on(LinkSelector::All)
                .jitter(Duration::from_micros(300))
                .duplicate(30, Duration::from_micros(150))
                .reorder(20, Duration::from_micros(500)),
        )
        .pause(1, Duration::ZERO, Duration::from_millis(10));
    let cluster = SssCluster::start(SssConfig::new(3).replication(2).faults(plan)).unwrap();
    let injector = cluster.fault_injector().expect("injector wired").clone();
    assert!(!injector.is_armed(), "plans stay inert until armed");
    injector.arm();

    let session = cluster.session(0);
    for i in 0..50u64 {
        let mut txn = session.begin_update();
        txn.write("counter", Value::from_u64(i));
        txn.commit().expect("update commits under faults");

        let mut ro = cluster.session((i as usize) % 3).begin_read_only();
        let read = ro.read("counter").expect("read-only reads never abort");
        ro.commit().expect("read-only commit never aborts");
        assert!(read.is_some(), "committed write must be visible");
    }

    let report = cluster.diagnostics();
    assert!(report.contains("node 0"), "diagnostics render: {report}");

    // Shutdown must disarm the injector, resume paused nodes, and stay
    // idempotent even when called repeatedly.
    cluster.shutdown();
    cluster.shutdown();
}

#[test]
fn paused_node_delays_but_does_not_lose_traffic() {
    // Pause node 1 for a window; commits needing it stall, then the backlog
    // drains on resume and everything completes.
    let plan = FaultPlan::new(3).pause(1, Duration::ZERO, Duration::from_millis(200));
    let cluster = SssCluster::start(SssConfig::new(2).replication(2).faults(plan)).unwrap();
    cluster.fault_injector().unwrap().arm();
    // Give the scheduler a moment to engage the pause gate before issuing
    // the commit, so the stall below is guaranteed to be observed.
    std::thread::sleep(Duration::from_millis(20));

    let session = cluster.session(0);
    let start = std::time::Instant::now();
    let mut txn = session.begin_update();
    txn.write("k", Value::from_u64(1));
    // Replication 2 on a 2-node cluster: the commit needs the paused node,
    // so the external commit can only complete after the resume.
    txn.commit().expect("commit completes after the resume");
    assert!(
        start.elapsed() >= Duration::from_millis(50),
        "commit should have been delayed by the pause window"
    );

    let mut ro = cluster.session(1).begin_read_only();
    assert_eq!(ro.read("k").unwrap(), Some(Value::from_u64(1)));
    ro.commit().unwrap();
    cluster.shutdown();
}
