//! Cross-engine integration smoke tests: every engine evaluated by the paper
//! boots, commits work, and keeps its own consistency promises; the weaker
//! PSI engine is allowed anomalies that SSS and the 2PC-baseline are not.

use sss::baselines::rococo::{RococoCluster, RococoConfig, RococoReadOutcome};
use sss::baselines::twopc::{TwoPcCluster, TwoPcConfig, TwoPcOutcome};
use sss::baselines::walter::{WalterCluster, WalterConfig, WalterOutcome};
use sss::core::{SssCluster, SssConfig};
use sss::storage::{Key, Value};

fn k(name: &str) -> Key {
    Key::new(name)
}

#[test]
fn sss_read_your_own_cluster_writes_across_nodes() {
    let cluster = SssCluster::start(SssConfig::new(5).replication(3)).unwrap();
    for node in 0..5 {
        let session = cluster.session(node);
        let mut txn = session.begin_update();
        txn.write(format!("node-key-{node}"), Value::from_u64(node as u64));
        txn.commit().unwrap();
    }
    // Every key is visible from every node.
    for reader in 0..5 {
        let session = cluster.session(reader);
        let mut ro = session.begin_read_only();
        for node in 0..5 {
            assert_eq!(
                ro.read(format!("node-key-{node}"))
                    .unwrap()
                    .and_then(|v| v.to_u64()),
                Some(node as u64),
                "node {reader} missed the write of node {node}"
            );
        }
        ro.commit().unwrap();
    }
    assert_eq!(cluster.stats().totals.votes_lock_failed, 0);
    cluster.shutdown();
}

#[test]
fn twopc_transfers_preserve_the_total_balance() {
    let cluster = TwoPcCluster::start(TwoPcConfig::new(3).replication(2));
    let session = cluster.session(0);
    let accounts: Vec<Key> = (0..8).map(|i| k(&format!("acct{i}"))).collect();
    let writes: Vec<(Key, Value)> = accounts
        .iter()
        .map(|a| (a.clone(), Value::from_u64(100)))
        .collect();
    assert_eq!(session.execute(&[], &writes).0, TwoPcOutcome::Committed);

    // A few serial transfers (the 2PC engine aborts only under concurrency).
    for i in 0..8 {
        let from = accounts[i % accounts.len()].clone();
        let to = accounts[(i + 1) % accounts.len()].clone();
        let (outcome, observed) = session.execute(&[from.clone(), to.clone()], &[]);
        assert_eq!(outcome, TwoPcOutcome::Committed);
        let observed = observed.unwrap();
        let from_balance = observed[&from].clone().unwrap().to_u64().unwrap();
        let to_balance = observed[&to].clone().unwrap().to_u64().unwrap();
        let (outcome, _) = session.execute(
            &[from.clone(), to.clone()],
            &[
                (from.clone(), Value::from_u64(from_balance - 10)),
                (to.clone(), Value::from_u64(to_balance + 10)),
            ],
        );
        assert_eq!(outcome, TwoPcOutcome::Committed);
    }

    let (outcome, observed) = session.execute(&accounts, &[]);
    assert_eq!(outcome, TwoPcOutcome::Committed);
    let total: u64 = observed
        .unwrap()
        .values()
        .map(|v| v.clone().unwrap().to_u64().unwrap())
        .sum();
    assert_eq!(total, 800);
    cluster.shutdown();
}

#[test]
fn walter_read_only_transactions_are_abort_free_but_weaker() {
    let cluster = WalterCluster::start(WalterConfig::new(3).replication(2));
    let writer = cluster.session(0);
    assert_eq!(
        writer
            .update(
                &[],
                &[(k("a"), Value::from_u64(1)), (k("b"), Value::from_u64(1))]
            )
            .0,
        WalterOutcome::Committed
    );
    // Read-only transactions never abort, from any node.
    for node in 0..3 {
        let session = cluster.session(node);
        for _ in 0..5 {
            assert!(session.read_only(&[k("a"), k("b")]).is_some());
        }
    }
    // A reader colocated with the writer observes the writer's commits
    // immediately (read-your-writes within a site), which is all PSI
    // promises here.
    let observed = writer.read_only(&[k("a")]).unwrap();
    assert_eq!(observed[&k("a")].clone().unwrap().to_u64(), Some(1));
    cluster.shutdown();
}

#[test]
fn rococo_read_only_cost_grows_with_read_set_size_under_write_pressure() {
    let cluster = std::sync::Arc::new(RococoCluster::start(RococoConfig::new(2)));
    let keys: Vec<Key> = (0..16).map(|i| k(&format!("r{i}"))).collect();
    let session = cluster.session(0);
    for key in &keys {
        assert!(session.update(&[(key.clone(), Value::from_u64(0))]));
    }

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let cluster = std::sync::Arc::clone(&cluster);
        let keys = keys.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let session = cluster.session(1);
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                let key = keys[(i as usize) % keys.len()].clone();
                assert!(session.update(&[(key, Value::from_u64(i))]));
            }
        })
    };

    let mut latency_by_size = Vec::new();
    for size in [2usize, 8] {
        let start = std::time::Instant::now();
        let mut committed = 0;
        for _ in 0..20 {
            if matches!(
                session.read_only(&keys[..size]).0,
                RococoReadOutcome::Committed
            ) {
                committed += 1;
            }
        }
        latency_by_size.push((size, start.elapsed(), committed));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();

    // Larger read-only transactions must not be cheaper than small ones per
    // committed snapshot (the trend Figure 8 relies on).
    let (small, small_elapsed, small_committed) = latency_by_size[0];
    let (large, large_elapsed, large_committed) = latency_by_size[1];
    assert!(small < large);
    assert!(small_committed > 0, "small read-only snapshots all failed");
    let small_per = small_elapsed.as_secs_f64() / small_committed.max(1) as f64;
    let large_per = large_elapsed.as_secs_f64() / large_committed.max(1) as f64;
    assert!(
        large_per >= small_per * 0.5,
        "larger ROCOCO read-only snapshots should not be dramatically cheaper"
    );
    cluster.shutdown();
}

#[test]
fn sss_garbage_collection_bounds_version_chains() {
    let cluster = SssCluster::start(SssConfig::new(2).replication(1)).unwrap();
    let session = cluster.session(0);
    for i in 0..200u64 {
        let mut txn = session.begin_update();
        txn.write("hot", Value::from_u64(i));
        txn.commit().unwrap();
    }
    let before: usize = (0..2)
        .map(|_| 0usize)
        .sum::<usize>()
        .max(cluster.collect_garbage());
    // After garbage collection the hot key retains at most the configured
    // number of versions, and reads still see the latest value.
    assert!(before > 0, "garbage collection should have pruned versions");
    let mut ro = session.begin_read_only();
    assert_eq!(ro.read("hot").unwrap().and_then(|v| v.to_u64()), Some(199));
    ro.commit().unwrap();
    cluster.shutdown();
}

#[test]
fn cluster_shutdown_is_idempotent_and_sessions_fail_cleanly() {
    let cluster = SssCluster::start(SssConfig::new(2)).unwrap();
    let session = cluster.session(0);
    cluster.shutdown();
    cluster.shutdown();
    let mut txn = session.begin_update();
    // Reads after shutdown fail with a clean error rather than hanging.
    let err = txn.read("anything").unwrap_err();
    assert!(matches!(
        err,
        sss::core::SssError::ClusterShutdown | sss::core::SssError::ReadTimeout { .. }
    ));
}
