//! The reliable-delivery layer under message loss, driven by the
//! deterministic simulator: retransmissions fire on virtual-time deadlines,
//! receiver-side dedup turns the at-least-once wire into effectively-once
//! handler delivery, and the layer's counters conserve (everything sent is
//! eventually acknowledged, nothing outstanding at quiescence).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sss_net::{
    ChannelTransport, Envelope, FaultInterposer, NodeRuntime, Priority, ReliabilityConfig,
    SendPlan, Transport, TransportConfig,
};
use sss_sim::SimRuntime;
use sss_vclock::NodeId;

/// SplitMix64 finalizer: a pure hash so the loss draws below are a
/// deterministic function of the draw counter alone (no RNG state to seed).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drops `percent`% of the wire attempts on one directed link (first sends
/// and retransmissions alike; acks travel the reverse link and pass). The
/// draw sequence is a pure function of an attempt counter, so every run —
/// and every seed — replays the same loss pattern.
#[derive(Debug)]
struct LossyLink {
    from: NodeId,
    to: NodeId,
    percent: u64,
    draws: AtomicU64,
}

impl LossyLink {
    fn new(from: NodeId, to: NodeId, percent: u64) -> Self {
        LossyLink {
            from,
            to,
            percent,
            draws: AtomicU64::new(0),
        }
    }
}

impl FaultInterposer for LossyLink {
    fn plan(&self, from: NodeId, to: NodeId, _now: Instant) -> SendPlan {
        if from != self.from || to != self.to {
            return SendPlan::pass();
        }
        let draw = self.draws.fetch_add(1, Ordering::Relaxed);
        if mix(draw) % 100 < self.percent {
            SendPlan::lost()
        } else {
            SendPlan::pass()
        }
    }
}

/// Duplicates every wire attempt on every link.
#[derive(Debug)]
struct DuplicateEverything;

impl FaultInterposer for DuplicateEverything {
    fn plan(&self, _from: NodeId, _to: NodeId, _now: Instant) -> SendPlan {
        SendPlan::pass().duplicate(Duration::ZERO)
    }
}

/// What one simulated lossy run observed, for determinism comparisons.
#[derive(Debug, PartialEq, Eq)]
struct LossyRunSummary {
    delivered: Vec<(u64, u64)>,
    retransmits: u64,
    virtual_nanos: u128,
}

/// Runs `messages` distinct payloads from node 0 to node 1 over a link
/// dropping `loss_percent`% of wire attempts, under the reliable layer, and
/// returns `(per-payload delivery counts, reliability stats, summary)`.
fn lossy_run(seed: u64, messages: u64, loss_percent: u64) -> (HashMap<u64, u64>, LossyRunSummary) {
    let sim = SimRuntime::new(seed);
    let config = TransportConfig::new(2)
        .seed(seed)
        .scheduler(sim.handle())
        .interposer(Arc::new(LossyLink::new(NodeId(0), NodeId(1), loss_percent)))
        .reliable(ReliabilityConfig::default());
    let transport: Arc<ChannelTransport<u64>> = Arc::new(ChannelTransport::new(config));
    let seen: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let service = {
        let seen = Arc::clone(&seen);
        Arc::new(move |env: Envelope<u64>| {
            *seen.lock().entry(env.payload).or_insert(0) += 1;
        })
    };
    let rt0 = NodeRuntime::spawn(
        NodeId(0),
        transport.mailbox(NodeId(0)),
        Arc::clone(&service),
        1,
    );
    let rt1 = NodeRuntime::spawn(NodeId(1), transport.mailbox(NodeId(1)), service, 1);

    let driver_transport = Arc::clone(&transport);
    sim.block_on("driver", move || {
        for payload in 0..messages {
            driver_transport
                .send(NodeId(0), NodeId(1), payload, Priority::Normal)
                .unwrap();
        }
    });
    // Quiescence drains everything the layer scheduled: in-flight copies,
    // ack crossings and every armed retransmission timer.
    sim.wait_quiescent();

    let stats = transport
        .reliability_stats()
        .expect("the reliable layer is enabled");
    assert_eq!(stats.sent, messages, "every send enters the layer once");
    assert_eq!(
        stats.outstanding, 0,
        "nothing may remain unacknowledged at quiescence"
    );
    assert_eq!(stats.gave_up, 0, "no message may exhaust its attempts");
    assert_eq!(
        stats.acks, messages,
        "counters conserve: every sequence number is eventually acknowledged"
    );

    let counts = seen.lock().clone();
    let mut delivered: Vec<(u64, u64)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
    delivered.sort_unstable();
    let summary = LossyRunSummary {
        delivered,
        retransmits: stats.retransmits,
        virtual_nanos: sim.virtual_elapsed().as_nanos(),
    };
    transport.shutdown();
    rt0.join();
    rt1.join();
    (counts, summary)
}

#[test]
fn loss_rate_sweep_delivers_everything_exactly_once() {
    for loss_percent in [0, 10, 25, 50] {
        let (counts, summary) = lossy_run(42, 60, loss_percent);
        assert_eq!(
            counts.len(),
            60,
            "{loss_percent}% loss: every payload must reach the handler"
        );
        for (payload, times) in &counts {
            assert_eq!(
                *times, 1,
                "{loss_percent}% loss: payload {payload} handled more than once"
            );
        }
        if loss_percent == 0 {
            assert_eq!(summary.retransmits, 0, "lossless run never retransmits");
        } else {
            assert!(
                summary.retransmits > 0,
                "{loss_percent}% loss: lost first attempts must be retransmitted"
            );
        }
    }
}

#[test]
fn lossy_runs_replay_bit_identically_by_seed() {
    let (_, a) = lossy_run(7, 40, 30);
    let (_, b) = lossy_run(7, 40, 30);
    assert_eq!(
        a, b,
        "same seed: same deliveries, same retransmit count, same virtual time"
    );
}

#[test]
fn retransmit_waits_for_its_virtual_time_deadline() {
    // A link that loses exactly the first wire attempt: delivery can only
    // happen through the retransmission, whose timer is armed at the
    // jittered base RTO — at least RTO/2 of *virtual* time after the send.
    #[derive(Debug)]
    struct LoseFirstAttempt {
        draws: AtomicU64,
    }
    impl FaultInterposer for LoseFirstAttempt {
        fn plan(&self, from: NodeId, to: NodeId, _now: Instant) -> SendPlan {
            if from == NodeId(0)
                && to == NodeId(1)
                && self.draws.fetch_add(1, Ordering::Relaxed) == 0
            {
                SendPlan::lost()
            } else {
                SendPlan::pass()
            }
        }
    }
    let sim = SimRuntime::new(3);
    let rel = ReliabilityConfig::default();
    let config = TransportConfig::new(2)
        .scheduler(sim.handle())
        .interposer(Arc::new(LoseFirstAttempt {
            draws: AtomicU64::new(0),
        }))
        .reliable(rel);
    let transport: Arc<ChannelTransport<u64>> = Arc::new(ChannelTransport::new(config));
    let handled = Arc::new(AtomicU64::new(0));
    let service = {
        let handled = Arc::clone(&handled);
        Arc::new(move |_env: Envelope<u64>| {
            handled.fetch_add(1, Ordering::SeqCst);
        })
    };
    let rt0 = NodeRuntime::spawn(
        NodeId(0),
        transport.mailbox(NodeId(0)),
        Arc::clone(&service),
        1,
    );
    let rt1 = NodeRuntime::spawn(NodeId(1), transport.mailbox(NodeId(1)), service, 1);
    let driver_transport = Arc::clone(&transport);
    sim.block_on("driver", move || {
        driver_transport
            .send(NodeId(0), NodeId(1), 9, Priority::Normal)
            .unwrap();
    });
    sim.wait_quiescent();

    assert_eq!(handled.load(Ordering::SeqCst), 1);
    let stats = transport.reliability_stats().unwrap();
    assert!(stats.retransmits >= 1, "delivery required a retransmission");
    assert_eq!(stats.outstanding, 0);
    // The jittered exponential backoff schedules the first retransmit in
    // [rto/2, rto): virtual time must have advanced at least that far — the
    // timer really waited for its deadline instead of firing immediately.
    assert!(
        sim.virtual_elapsed() >= rel.rto / 2,
        "virtual time only advanced {:?}, expected at least {:?}",
        sim.virtual_elapsed(),
        rel.rto / 2
    );
    transport.shutdown();
    rt0.join();
    rt1.join();
}

#[test]
fn wire_duplicates_are_suppressed_before_the_handler() {
    let sim = SimRuntime::new(11);
    let config = TransportConfig::new(2)
        .scheduler(sim.handle())
        .interposer(Arc::new(DuplicateEverything))
        .reliable(ReliabilityConfig::default());
    let transport: Arc<ChannelTransport<u64>> = Arc::new(ChannelTransport::new(config));
    let seen: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let service = {
        let seen = Arc::clone(&seen);
        Arc::new(move |env: Envelope<u64>| {
            *seen.lock().entry(env.payload).or_insert(0) += 1;
        })
    };
    let rt0 = NodeRuntime::spawn(
        NodeId(0),
        transport.mailbox(NodeId(0)),
        Arc::clone(&service),
        1,
    );
    let rt1 = NodeRuntime::spawn(NodeId(1), transport.mailbox(NodeId(1)), service, 1);
    let driver_transport = Arc::clone(&transport);
    sim.block_on("driver", move || {
        for payload in 0..32u64 {
            driver_transport
                .send(NodeId(0), NodeId(1), payload, Priority::Normal)
                .unwrap();
        }
    });
    sim.wait_quiescent();

    let counts = seen.lock().clone();
    assert_eq!(counts.len(), 32);
    for (payload, times) in &counts {
        assert_eq!(*times, 1, "payload {payload} leaked a duplicate");
    }
    let stats = transport.reliability_stats().unwrap();
    assert!(
        stats.duplicates_suppressed >= 32,
        "every duplicated wire copy must be suppressed (got {})",
        stats.duplicates_suppressed
    );
    assert_eq!(stats.outstanding, 0);
    transport.shutdown();
    rt0.join();
    rt1.join();
}

#[test]
fn lost_acks_cost_duplicates_never_deliveries() {
    // Loss on the *reverse* link only: every message arrives on the first
    // attempt, but its ack is often dropped, so the sender retransmits and
    // the receiver suppresses + re-acks until one crossing survives.
    let sim = SimRuntime::new(19);
    let config = TransportConfig::new(2)
        .scheduler(sim.handle())
        .interposer(Arc::new(LossyLink::new(NodeId(1), NodeId(0), 60)))
        .reliable(ReliabilityConfig::default());
    let transport: Arc<ChannelTransport<u64>> = Arc::new(ChannelTransport::new(config));
    let seen: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let service = {
        let seen = Arc::clone(&seen);
        Arc::new(move |env: Envelope<u64>| {
            *seen.lock().entry(env.payload).or_insert(0) += 1;
        })
    };
    let rt0 = NodeRuntime::spawn(
        NodeId(0),
        transport.mailbox(NodeId(0)),
        Arc::clone(&service),
        1,
    );
    let rt1 = NodeRuntime::spawn(NodeId(1), transport.mailbox(NodeId(1)), service, 1);
    let driver_transport = Arc::clone(&transport);
    sim.block_on("driver", move || {
        for payload in 0..40u64 {
            driver_transport
                .send(NodeId(0), NodeId(1), payload, Priority::Normal)
                .unwrap();
        }
    });
    sim.wait_quiescent();

    let counts = seen.lock().clone();
    assert_eq!(counts.len(), 40);
    for (payload, times) in &counts {
        assert_eq!(*times, 1, "payload {payload} handled more than once");
    }
    let stats = transport.reliability_stats().unwrap();
    assert_eq!(stats.acks, 40, "every message is eventually retired");
    assert_eq!(stats.outstanding, 0);
    assert!(
        stats.duplicates_suppressed > 0,
        "lost acks must have produced suppressed duplicates"
    );
    transport.shutdown();
    rt0.join();
    rt1.join();
}
