//! Multi-threaded batched-delivery tests: strict priority order and zero
//! message loss across pause/resume and close, plus the transport-level
//! batch and local-delivery surfaces.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sss_net::{
    ChannelTransport, Envelope, Mailbox, NodeId, NodeRuntime, Priority, Transport, TransportConfig,
};

/// A `(producer, class, sequence)` tag pushed through the mailbox under test.
type Tagged = (usize, Priority, usize);

/// Four producer threads push tagged messages of every priority class while
/// four consumer threads drain with `pop_batch`; after close, every message
/// must have been delivered exactly once, and each drained batch must be
/// single-class with intra-batch FIFO order per producer.
#[test]
fn pop_batch_delivers_everything_exactly_once_across_threads() {
    const PRODUCERS: usize = 4;
    const PER_CLASS: usize = 500;
    let mailbox: Arc<Mailbox<Tagged>> = Arc::new(Mailbox::new());
    let consumed: Arc<Mutex<Vec<Vec<Tagged>>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let mailbox = Arc::clone(&mailbox);
            scope.spawn(move || {
                for seq in 0..PER_CLASS {
                    for priority in Priority::ALL {
                        assert!(mailbox.push((p, priority, seq), priority));
                    }
                }
            });
        }
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let mailbox = Arc::clone(&mailbox);
                let consumed = Arc::clone(&consumed);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    while mailbox.pop_batch(7, &mut out) > 0 {
                        consumed.lock().unwrap().push(out.clone());
                        out.clear();
                    }
                })
            })
            .collect();
        // Give producers time to finish, then close so consumers exit after
        // draining the backlog.
        loop {
            let stats = mailbox.stats();
            if stats.total_enqueued() as usize == PRODUCERS * PER_CLASS * 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        mailbox.close();
        for c in consumers {
            c.join().unwrap();
        }
    });

    let batches = consumed.lock().unwrap();
    // No loss, no duplication.
    let mut seen: HashSet<(usize, Priority, usize)> = HashSet::new();
    for batch in batches.iter() {
        // Batches never mix priority classes.
        assert!(
            batch.windows(2).all(|w| w[0].1 == w[1].1),
            "mixed-priority batch: {batch:?}"
        );
        for msg in batch {
            assert!(seen.insert(*msg), "duplicated message: {msg:?}");
        }
    }
    assert_eq!(seen.len(), PRODUCERS * PER_CLASS * 3, "messages were lost");
    let stats = mailbox.stats();
    assert!(stats.is_coherent());
    assert_eq!(stats.total_dequeued(), stats.total_enqueued());
    assert!(
        stats.messages_per_wakeup() >= 1.0,
        "batching should average at least one message per wakeup"
    );
}

/// Per-producer FIFO within a priority class survives batched draining by a
/// single consumer.
#[test]
fn pop_batch_preserves_fifo_within_a_class() {
    let mailbox: Mailbox<usize> = Mailbox::new();
    for seq in 0..100 {
        mailbox.push(seq, Priority::Normal);
    }
    let mut out = Vec::new();
    let mut drained = Vec::new();
    while mailbox.try_pop().map(|m| drained.push(m)).is_some() {}
    assert_eq!(drained, (0..100).collect::<Vec<_>>());
    for seq in 100..200 {
        mailbox.push(seq, Priority::Normal);
    }
    while !mailbox.is_empty() {
        mailbox.pop_batch(9, &mut out);
    }
    assert_eq!(out, (100..200).collect::<Vec<_>>());
}

/// Messages pushed while paused are all delivered after resume; messages
/// pushed before a close are all delivered after it; nothing is lost or
/// reordered across the transitions, and higher classes still drain first.
#[test]
fn no_loss_across_pause_resume_and_close() {
    let mailbox: Arc<Mailbox<(Priority, usize)>> = Arc::new(Mailbox::new());
    let received: Arc<Mutex<Vec<(Priority, usize)>>> = Arc::new(Mutex::new(Vec::new()));

    let consumer = {
        let mailbox = Arc::clone(&mailbox);
        let received = Arc::clone(&received);
        std::thread::spawn(move || {
            let mut out = Vec::new();
            while mailbox.pop_batch(4, &mut out) > 0 {
                received.lock().unwrap().extend(out.drain(..));
            }
        })
    };

    let pause = mailbox.pause_control();
    for round in 0..50 {
        pause.pause();
        for seq in 0..4 {
            mailbox.push((Priority::Low, round * 100 + seq), Priority::Low);
            mailbox.push((Priority::High, round * 100 + seq), Priority::High);
        }
        pause.resume();
    }
    // Push a final burst and close while it is still queued.
    pause.pause();
    for seq in 0..10 {
        mailbox.push((Priority::Normal, 9000 + seq), Priority::Normal);
    }
    mailbox.close();
    consumer.join().unwrap();

    let received = received.lock().unwrap();
    assert_eq!(received.len(), 50 * 8 + 10, "no message may be lost");
    // Per class, per-sequence order is preserved.
    for class in Priority::ALL {
        let seqs: Vec<usize> = received
            .iter()
            .filter(|(p, _)| *p == class)
            .map(|(_, s)| *s)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "class {class:?} was reordered");
    }
    let stats = mailbox.stats();
    assert!(stats.is_coherent());
    assert_eq!(stats.total_dequeued(), stats.total_enqueued());
}

/// `Transport::send_batch` delivers the whole batch in order with a single
/// enqueue operation at the destination.
#[test]
fn transport_send_batch_is_one_enqueue_op() {
    let t: ChannelTransport<u32> = ChannelTransport::new(TransportConfig::new(2));
    t.send_batch(NodeId(0), NodeId(1), vec![1, 2, 3], Priority::High)
        .unwrap();
    let stats = t.mailbox_stats(NodeId(1));
    assert_eq!(stats.total_enqueued(), 3);
    assert_eq!(stats.enqueue_ops, 1, "a batch is one enqueue operation");
    let mb = t.mailbox(NodeId(1));
    let mut out = Vec::new();
    assert_eq!(mb.pop_batch(8, &mut out), 3);
    assert_eq!(
        out.into_iter().map(|e| e.payload).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
}

/// A registered local dispatch receives self-addressed messages without any
/// queueing; other destinations and paused nodes still go through the
/// mailbox.
#[test]
fn local_dispatch_bypasses_the_mailbox_for_self_sends_only() {
    let t: Arc<ChannelTransport<u32>> = Arc::new(ChannelTransport::new(TransportConfig::new(2)));
    let handled = Arc::new(AtomicUsize::new(0));
    {
        let handled = Arc::clone(&handled);
        t.set_local_dispatch(
            NodeId(0),
            Arc::new(move |env: Envelope<u32>| {
                handled.fetch_add(env.payload as usize, Ordering::SeqCst);
            }),
        );
    }
    t.send(NodeId(0), NodeId(0), 5, Priority::Normal).unwrap();
    t.send_batch(NodeId(0), NodeId(0), vec![1, 2], Priority::Normal)
        .unwrap();
    assert_eq!(handled.load(Ordering::SeqCst), 8, "handled synchronously");
    let stats = t.mailbox_stats(NodeId(0));
    assert_eq!(stats.total_enqueued(), 0, "nothing was queued");
    assert_eq!(stats.local_delivered, 3);

    // A remote destination still queues.
    t.send(NodeId(0), NodeId(1), 9, Priority::Normal).unwrap();
    assert_eq!(t.mailbox_stats(NodeId(1)).total_enqueued(), 1);

    // A paused node must not make progress through the fast path: the
    // self-send lands in the mailbox instead.
    t.mailbox(NodeId(0)).pause_control().pause();
    t.send(NodeId(0), NodeId(0), 7, Priority::Normal).unwrap();
    assert_eq!(handled.load(Ordering::SeqCst), 8, "paused: not dispatched");
    assert_eq!(t.mailbox_stats(NodeId(0)).total_enqueued(), 1);
    t.mailbox(NodeId(0)).pause_control().resume();
    assert_eq!(t.mailbox(NodeId(0)).pop().unwrap().payload, 7);
}

/// Workers spawned with an explicit batch size drain everything that was
/// queued, across priorities, and exit cleanly on close.
#[test]
fn batched_runtime_processes_all_messages() {
    let transport: ChannelTransport<u64> = ChannelTransport::new(TransportConfig::new(1));
    let sum = Arc::new(AtomicUsize::new(0));
    let service = {
        let sum = Arc::clone(&sum);
        Arc::new(move |env: Envelope<u64>| {
            sum.fetch_add(env.payload as usize, Ordering::SeqCst);
        })
    };
    let runtime =
        NodeRuntime::spawn_batched(NodeId(0), transport.mailbox(NodeId(0)), service, 3, 8);
    let mut expected = 0usize;
    for i in 0..300u64 {
        let priority = Priority::ALL[(i % 3) as usize];
        transport.send(NodeId(0), NodeId(0), i, priority).unwrap();
        expected += i as usize;
    }
    transport.shutdown();
    runtime.join();
    assert_eq!(sum.load(Ordering::SeqCst), expected);
    let stats = transport.mailbox_stats(NodeId(0));
    assert_eq!(stats.total_dequeued(), 300);
    assert!(
        stats.dequeue_ops <= 300,
        "batching never exceeds one op per message"
    );
}
