//! The full net pipeline — transport, mailboxes, node workers, reply
//! channels — driven by the discrete-event simulator instead of threads and
//! sleeps: latency becomes virtual-time delivery events, workers become
//! daemon tasks, and a fixed seed replays the run exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_net::{
    ChannelTransport, Envelope, LatencyModel, NodeRuntime, Priority, Transport, TransportConfig,
};
use sss_sim::SimRuntime;
use sss_vclock::NodeId;

/// Summary of one simulated run, used to assert seed determinism.
#[derive(Debug, PartialEq, Eq)]
struct RunSummary {
    handled: u64,
    virtual_nanos: u128,
    enqueued: [u64; 3],
}

fn echo_run(seed: u64, messages: u64) -> RunSummary {
    let sim = SimRuntime::new(seed);
    let config = TransportConfig::new(2)
        .latency(LatencyModel::new(
            Duration::from_millis(3),
            Duration::from_millis(1),
        ))
        .seed(7)
        .scheduler(sim.handle());
    let transport: Arc<ChannelTransport<u64>> = Arc::new(ChannelTransport::new(config));
    let handled = Arc::new(AtomicU64::new(0));
    let service = {
        let handled = Arc::clone(&handled);
        Arc::new(move |env: Envelope<u64>| {
            handled.fetch_add(env.payload, Ordering::SeqCst);
        })
    };
    let rt0 = NodeRuntime::spawn(
        NodeId(0),
        transport.mailbox(NodeId(0)),
        Arc::clone(&service),
        2,
    );
    let rt1 = NodeRuntime::spawn(NodeId(1), transport.mailbox(NodeId(1)), service, 2);

    let driver_transport = Arc::clone(&transport);
    sim.block_on("driver", move || {
        for i in 0..messages {
            let to = NodeId((i % 2) as usize);
            driver_transport
                .send(NodeId(0), to, 1, Priority::Normal)
                .unwrap();
            if i % 8 == 0 {
                sss_vclock::runtime::sleep(Duration::from_millis(1));
            }
        }
    });
    // Scheduled deliveries keep firing after the driver exits; quiescence
    // means every message has been delivered and every worker is parked.
    sim.wait_quiescent();

    let mut enqueued = [0u64; 3];
    for node in [NodeId(0), NodeId(1)] {
        let stats = transport.mailbox_stats(node);
        for (total, n) in enqueued.iter_mut().zip(stats.enqueued) {
            *total += n;
        }
    }
    let summary = RunSummary {
        handled: handled.load(Ordering::SeqCst),
        virtual_nanos: sim.virtual_elapsed().as_nanos(),
        enqueued,
    };
    transport.shutdown();
    rt0.join();
    rt1.join();
    summary
}

#[test]
fn simulated_pipeline_delivers_everything_in_virtual_time() {
    let wall_start = Instant::now();
    let summary = echo_run(42, 200);
    assert_eq!(summary.handled, 200, "every message must be handled");
    assert_eq!(summary.enqueued.iter().sum::<u64>(), 200);
    // 200 messages at >=3ms simulated latency each: virtual time moved, but
    // none of it was slept on the wall clock.
    assert!(summary.virtual_nanos >= Duration::from_millis(3).as_nanos());
    assert!(
        wall_start.elapsed() < Duration::from_secs(30),
        "virtual latency must not consume wall-clock time at scale"
    );
}

#[test]
fn same_seed_replays_the_run_exactly() {
    let a = echo_run(7, 120);
    let b = echo_run(7, 120);
    assert_eq!(a, b, "a fixed seed must replay bit-identically");
}

#[test]
fn reply_channels_work_against_the_virtual_clock() {
    let sim = SimRuntime::new(1);
    let config = TransportConfig::new(1)
        .latency(LatencyModel::new(Duration::from_millis(5), Duration::ZERO))
        .scheduler(sim.handle());
    // The node echoes each payload back through a reply channel handed over
    // out-of-band (keyed by payload here, since the message type is just u64).
    let (reply_tx, reply_rx) = sss_net::reply_channel::<u64>(1);
    let transport: Arc<ChannelTransport<u64>> = Arc::new(ChannelTransport::new(config));
    let reply_tx = Arc::new(parking_lot::Mutex::new(Some(reply_tx)));
    let service = {
        let reply_tx = Arc::clone(&reply_tx);
        Arc::new(move |env: Envelope<u64>| {
            if let Some(tx) = reply_tx.lock().take() {
                tx.send(env.payload * 2);
            }
        })
    };
    let rt = NodeRuntime::spawn(NodeId(0), transport.mailbox(NodeId(0)), service, 1);
    let driver_transport = Arc::clone(&transport);
    let got = sim.block_on("requester", move || {
        driver_transport
            .send(NodeId(0), NodeId(0), 21, Priority::High)
            .unwrap();
        // The reply can only arrive after >=5ms of *virtual* latency; the
        // timeout is also virtual, so this returns promptly on the wall
        // clock either way.
        reply_rx.recv_timeout(Duration::from_secs(60))
    });
    assert_eq!(got, Some(42));
    sim.wait_quiescent();
    assert!(sim.virtual_elapsed() >= Duration::from_millis(5));
    transport.shutdown();
    rt.join();
}
