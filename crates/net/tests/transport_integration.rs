//! Integration tests of the message-passing substrate: request/reply over
//! worker pools, latency injection and reordering, priority handling under
//! load, and clean shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_net::{
    reply_channel, ChannelTransport, Envelope, LatencyModel, NodeId, NodeRuntime, Priority,
    ReplySender, Transport, TransportConfig, TransportExt,
};

/// A miniature echo protocol used to exercise the substrate end to end.
#[derive(Debug, Clone)]
enum EchoMessage {
    Ping {
        payload: u64,
        reply: ReplySender<u64>,
    },
    Burst {
        priority_class: Priority,
    },
}

struct EchoService {
    node: NodeId,
    processed: AtomicUsize,
    high_before_low: AtomicUsize,
    low_seen: AtomicUsize,
}

impl sss_net::NodeService<EchoMessage> for EchoService {
    fn handle(&self, envelope: Envelope<EchoMessage>) {
        assert_eq!(envelope.to, self.node, "envelope routed to the wrong node");
        match envelope.payload {
            EchoMessage::Ping { payload, reply } => {
                reply.send(payload * 2);
            }
            EchoMessage::Burst { priority_class } => match priority_class {
                Priority::High => {
                    if self.low_seen.load(Ordering::SeqCst) == 0 {
                        self.high_before_low.fetch_add(1, Ordering::SeqCst);
                    }
                }
                Priority::Low => {
                    self.low_seen.fetch_add(1, Ordering::SeqCst);
                }
                Priority::Normal => {}
            },
        }
        self.processed.fetch_add(1, Ordering::SeqCst);
    }
}

fn start_cluster(
    nodes: usize,
    latency: LatencyModel,
) -> (
    Arc<ChannelTransport<EchoMessage>>,
    Vec<Arc<EchoService>>,
    Vec<NodeRuntime>,
) {
    let transport = Arc::new(ChannelTransport::new(
        TransportConfig::new(nodes).latency(latency).seed(7),
    ));
    let services: Vec<Arc<EchoService>> = (0..nodes)
        .map(|i| {
            Arc::new(EchoService {
                node: NodeId(i),
                processed: AtomicUsize::new(0),
                high_before_low: AtomicUsize::new(0),
                low_seen: AtomicUsize::new(0),
            })
        })
        .collect();
    let runtimes = services
        .iter()
        .map(|s| NodeRuntime::spawn(s.node, transport.mailbox(s.node), Arc::clone(s), 2))
        .collect();
    (transport, services, runtimes)
}

#[test]
fn request_reply_round_trips_across_many_nodes() {
    let (transport, services, runtimes) = start_cluster(6, LatencyModel::ZERO);
    for target in 0..6usize {
        let (reply, rx) = reply_channel(1);
        transport
            .send(
                NodeId(0),
                NodeId(target),
                EchoMessage::Ping {
                    payload: target as u64,
                    reply,
                },
                Priority::Normal,
            )
            .unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)),
            Some(target as u64 * 2)
        );
    }
    transport.shutdown();
    for r in runtimes {
        r.join();
    }
    let processed: usize = services
        .iter()
        .map(|s| s.processed.load(Ordering::SeqCst))
        .sum();
    assert_eq!(processed, 6);
}

#[test]
fn fastest_replica_wins_with_latency_injection() {
    // One request fanned out to three "replicas": the reply used is whichever
    // arrives first; the others are absorbed by the channel capacity.
    let (transport, _services, runtimes) = start_cluster(
        4,
        LatencyModel::new(Duration::from_micros(200), Duration::from_micros(800)),
    );
    let (reply, rx) = reply_channel(3);
    let targets = [NodeId(1), NodeId(2), NodeId(3)];
    let msg = EchoMessage::Ping { payload: 21, reply };
    transport
        .multicast(NodeId(0), targets, msg, Priority::Normal)
        .unwrap();
    assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Some(42));
    transport.shutdown();
    for r in runtimes {
        r.join();
    }
}

#[test]
fn high_priority_messages_overtake_queued_low_priority_traffic() {
    // Saturate a single-worker node with low-priority traffic, then send a
    // high-priority message: it must be processed before most of the backlog.
    let transport: Arc<ChannelTransport<EchoMessage>> =
        Arc::new(ChannelTransport::new(TransportConfig::new(1)));
    let service = Arc::new(EchoService {
        node: NodeId(0),
        processed: AtomicUsize::new(0),
        high_before_low: AtomicUsize::new(0),
        low_seen: AtomicUsize::new(0),
    });
    // Queue the backlog BEFORE starting the worker so the ordering is
    // deterministic.
    for _ in 0..64 {
        transport
            .send(
                NodeId(0),
                NodeId(0),
                EchoMessage::Burst {
                    priority_class: Priority::Low,
                },
                Priority::Low,
            )
            .unwrap();
    }
    transport
        .send(
            NodeId(0),
            NodeId(0),
            EchoMessage::Burst {
                priority_class: Priority::High,
            },
            Priority::High,
        )
        .unwrap();
    let runtime = NodeRuntime::spawn(
        NodeId(0),
        transport.mailbox(NodeId(0)),
        Arc::clone(&service),
        1,
    );
    let deadline = Instant::now() + Duration::from_secs(2);
    while service.processed.load(Ordering::SeqCst) < 65 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(service.processed.load(Ordering::SeqCst), 65);
    assert_eq!(
        service.high_before_low.load(Ordering::SeqCst),
        1,
        "the high-priority message should have been handled before the low-priority backlog"
    );
    transport.shutdown();
    runtime.join();
}

#[test]
fn latency_injection_delays_but_delivers_everything() {
    let (transport, services, runtimes) = start_cluster(
        2,
        LatencyModel::new(Duration::from_millis(1), Duration::from_millis(2)),
    );
    let start = Instant::now();
    for i in 0..50u64 {
        let (reply, _rx) = reply_channel(1);
        transport
            .send(
                NodeId(0),
                NodeId(1),
                EchoMessage::Ping { payload: i, reply },
                Priority::Normal,
            )
            .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while services[1].processed.load(Ordering::SeqCst) < 50 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(services[1].processed.load(Ordering::SeqCst), 50);
    assert!(
        start.elapsed() >= Duration::from_millis(1),
        "delivery should not be instantaneous with latency injection"
    );
    transport.shutdown();
    for r in runtimes {
        r.join();
    }
}

#[test]
fn shutdown_rejects_new_sends_and_joins_workers() {
    let (transport, services, runtimes) = start_cluster(3, LatencyModel::ZERO);
    transport.shutdown();
    let (reply, _rx) = reply_channel(1);
    assert!(transport
        .send(
            NodeId(0),
            NodeId(1),
            EchoMessage::Ping { payload: 1, reply },
            Priority::Normal
        )
        .is_err());
    for r in runtimes {
        r.join();
    }
    // Shutdown is idempotent.
    transport.shutdown();
    assert_eq!(services[1].processed.load(Ordering::SeqCst), 0);
}

#[test]
fn mailbox_statistics_reflect_traffic() {
    let (transport, _services, runtimes) = start_cluster(2, LatencyModel::ZERO);
    for i in 0..10u64 {
        let (reply, rx) = reply_channel(1);
        transport
            .send(
                NodeId(0),
                NodeId(1),
                EchoMessage::Ping { payload: i, reply },
                Priority::Normal,
            )
            .unwrap();
        assert!(rx.recv_timeout(Duration::from_secs(1)).is_some());
    }
    let stats = transport.mailbox_stats(NodeId(1));
    assert_eq!(stats.total_enqueued(), 10);
    assert_eq!(stats.total_dequeued(), 10);
    assert_eq!(
        stats.enqueued[1], 10,
        "all pings travelled on the normal class"
    );
    transport.shutdown();
    for r in runtimes {
        r.join();
    }
}
