//! The [`Transport`] abstraction and its in-process implementation.

use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sss_vclock::runtime::{Backoff, SchedulerHandle};
use sss_vclock::NodeId;

use crate::latency::LatencyModel;
use crate::mailbox::{Mailbox, MailboxStats, Priority, MESSAGE_KIND_SLOTS};

/// A node's message handler as registered with
/// [`ChannelTransport::set_local_dispatch`]: the target of the local
/// delivery fast path for messages a node sends to itself.
pub type LocalDispatch<M> = Arc<dyn Fn(Envelope<M>) + Send + Sync>;

/// A message in flight between two nodes.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Priority class used for queueing at the destination.
    pub priority: Priority,
    /// The protocol payload.
    pub payload: M,
    /// Per-link sequence number stamped by the reliable-delivery layer;
    /// `None` when the transport runs without one. Protocol handlers never
    /// see duplicates regardless — the receiving side of the layer filters
    /// and acknowledges by this number before a worker hands the message to
    /// its handler.
    pub rel_seq: Option<u64>,
}

/// Errors returned by [`Transport`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// The destination node id is outside the cluster.
    UnknownNode(NodeId),
    /// The transport (or the destination mailbox) has been shut down.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownNode(n) => write!(f, "unknown destination node {n}"),
            TransportError::Closed => write!(f, "transport is closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Abstract reliable asynchronous channel between cluster nodes.
///
/// The system model (paper §II) assumes "reliable asynchronous channels,
/// meaning messages are guaranteed to be eventually delivered unless a crash
/// happens at the sender or receiver node", with no bound on delivery time.
/// Protocol code only interacts with other nodes through this trait.
pub trait Transport<M: Send>: Send + Sync {
    /// Sends `payload` from `from` to `to` with the given priority.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownNode`] if `to` is out of range and
    /// [`TransportError::Closed`] after shutdown.
    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        payload: M,
        priority: Priority,
    ) -> Result<(), TransportError>;

    /// Sends every payload of `batch` from `from` to `to` with the given
    /// priority, as **one delivery batch**: implementations enqueue the
    /// whole batch with a single wakeup at the destination where possible.
    ///
    /// Fault semantics are unchanged — an interposer is consulted once per
    /// message, exactly as if each payload had been sent individually.
    ///
    /// The default implementation simply loops over [`Transport::send`].
    ///
    /// # Errors
    ///
    /// Same as [`Transport::send`]; on error a prefix of the batch may have
    /// been delivered (identical to a failing sequence of sends).
    fn send_batch(
        &self,
        from: NodeId,
        to: NodeId,
        batch: Vec<M>,
        priority: Priority,
    ) -> Result<(), TransportError> {
        for payload in batch {
            self.send(from, to, payload, priority)?;
        }
        Ok(())
    }

    /// Number of nodes reachable through this transport.
    fn num_nodes(&self) -> usize;
}

/// Per-send delivery plan produced by a [`FaultInterposer`].
///
/// Every entry is one delivered copy of the message, with the *extra* delay
/// (on top of the transport's configured latency model) to apply to that
/// copy. A plan can also declare the message [`SendPlan::lost`]: zero copies
/// reach the wire. Loss is only survivable when the transport runs a
/// reliable-delivery layer (see [`ReliabilityConfig`]) whose retransmissions
/// redraw the plan until a copy passes; without one a lost message is simply
/// gone, which breaks the paper's reliable-channel system model — fault
/// plans that enable loss are expected to enable reliability with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendPlan {
    copies: Vec<Duration>,
    lost: bool,
}

impl SendPlan {
    /// The message passes through unchanged: one copy, no extra delay.
    pub fn pass() -> Self {
        SendPlan {
            copies: vec![Duration::ZERO],
            lost: false,
        }
    }

    /// The message is dropped on the wire: no copy is ever delivered.
    pub fn lost() -> Self {
        SendPlan {
            copies: Vec::new(),
            lost: true,
        }
    }

    /// One copy delivered with `extra` additional delay.
    pub fn delayed(extra: Duration) -> Self {
        SendPlan {
            copies: vec![extra],
            lost: false,
        }
    }

    /// An explicit list of copies, each with its own extra delay. Empty
    /// lists are normalized to [`SendPlan::pass`] — dropping a message is
    /// an explicit decision ([`SendPlan::lost`]), never an accident of an
    /// empty copy list.
    pub fn copies(copies: Vec<Duration>) -> Self {
        if copies.is_empty() {
            SendPlan::pass()
        } else {
            SendPlan {
                copies,
                lost: false,
            }
        }
    }

    /// Adds one duplicated copy with `extra` additional delay. No-op on a
    /// lost plan: a dropped message has no copies to duplicate.
    pub fn duplicate(mut self, extra: Duration) -> Self {
        if !self.lost {
            self.copies.push(extra);
        }
        self
    }

    /// The extra delay of every copy to deliver (empty for a lost plan).
    pub fn deliveries(&self) -> &[Duration] {
        &self.copies
    }

    /// `true` when the plan is a single zero-delay copy (the fast path).
    pub fn is_pass(&self) -> bool {
        !self.lost && self.copies.len() == 1 && self.copies[0].is_zero()
    }

    /// `true` when the message is dropped on the wire.
    pub fn is_lost(&self) -> bool {
        self.lost
    }
}

/// Interposes on every [`Transport::send`], turning one logical send into a
/// set of (possibly delayed, possibly duplicated, possibly lost) deliveries.
///
/// This is the hook the fault-injection subsystem (`sss-faults`) attaches
/// to: delay spikes, jitter bursts, reordering (delaying one message so
/// later ones overtake it), duplication, transient partitions (holding
/// messages until the partition heals) and message loss are all expressible
/// as a [`SendPlan`]. The paper's system model assumes reliable asynchronous
/// channels; loss therefore steps outside it and is only meaningful together
/// with the transport's reliable-delivery layer ([`ReliabilityConfig`]),
/// which re-establishes eventual delivery by retransmission — every fresh
/// wire attempt (first send and each retransmit) draws a fresh plan.
///
/// Interposer faults compose with the transport's [`LatencyModel`]: each
/// copy's total delay is the sampled model latency plus the plan's extra
/// delay for that copy.
pub trait FaultInterposer: Send + Sync + std::fmt::Debug {
    /// Plans the delivery of one message sent from `from` to `to` at `now`.
    fn plan(&self, from: NodeId, to: NodeId, now: Instant) -> SendPlan;
}

/// Convenience helpers available on every transport.
pub trait TransportExt<M: Send + Clone>: Transport<M> {
    /// Sends a copy of `payload` to every node in `targets`, moving the
    /// payload into the last send so a fan-out to N targets pays N-1
    /// clones, not N.
    ///
    /// Self-addressed copies are sent *after* every remote copy: a send to
    /// `from` may run the destination handler inline on this thread (the
    /// local delivery fast path), and running it mid-fan-out would hold up
    /// the remaining remote sends behind it.
    fn multicast(
        &self,
        from: NodeId,
        targets: impl IntoIterator<Item = NodeId>,
        payload: M,
        priority: Priority,
    ) -> Result<(), TransportError> {
        let mut targets: Vec<NodeId> = targets.into_iter().collect();
        // Stable: remote targets keep their order, self-addressed ones
        // move to the end.
        targets.sort_by_key(|t| *t == from);
        let Some((last, rest)) = targets.split_last() else {
            return Ok(());
        };
        for target in rest {
            self.send(from, *target, payload.clone(), priority)?;
        }
        self.send(from, *last, payload, priority)
    }
}

impl<M: Send + Clone, T: Transport<M> + ?Sized> TransportExt<M> for T {}

/// Tuning knobs of the transport's reliable-delivery layer.
///
/// The layer sits between [`Transport::send`] and the destination mailbox:
/// every message gets a per-link sequence number and is retransmitted on a
/// capped-exponential schedule (deterministically jittered from the
/// transport seed) until the *receiver's worker* acknowledges popping it for
/// processing — not merely enqueueing it, so a crash that purges a mailbox
/// also revives the retransmissions of everything it destroyed. Receivers
/// drop already-processed sequence numbers before the handler sees them,
/// turning the at-least-once wire into effectively-once delivery. Acks
/// travel the reverse link and are subject to the same wire faults (loss
/// included); a lost ack costs one duplicate, which the receiver suppresses
/// and re-acknowledges.
#[derive(Debug, Clone, Copy)]
pub struct ReliabilityConfig {
    /// Base retransmission timeout: the first retransmit of an unacked
    /// message fires roughly this long after the send.
    pub rto: Duration,
    /// Upper bound on the backoff between retransmissions.
    pub cap: Duration,
    /// Retransmissions per message before the layer gives up, which bounds
    /// the event cascade when a peer never restarts.
    pub max_attempts: u32,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            rto: Duration::from_millis(1),
            cap: Duration::from_millis(10),
            max_attempts: 20,
        }
    }
}

/// Monotonic counters of the reliable-delivery layer (see
/// [`ChannelTransport::reliability_stats`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Messages that entered the reliable layer (sequence numbers issued).
    pub sent: u64,
    /// Wire retransmissions performed.
    pub retransmits: u64,
    /// Acknowledgements that retired an outstanding message.
    pub acks: u64,
    /// Duplicate deliveries suppressed before reaching a handler.
    pub duplicates_suppressed: u64,
    /// Messages abandoned after exhausting `max_attempts` retransmissions.
    pub gave_up: u64,
    /// Messages currently unacknowledged (a gauge, not a counter).
    pub outstanding: u64,
}

/// Configuration of a [`ChannelTransport`].
#[derive(Clone)]
pub struct TransportConfig {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// One-way latency model applied to every message.
    pub latency: LatencyModel,
    /// Seed for the latency sampler, for reproducible asynchrony in tests.
    pub seed: u64,
    /// Optional fault interposer consulted on every send.
    pub interposer: Option<Arc<dyn FaultInterposer>>,
    /// Optional simulation scheduler. When set, latency is modeled by
    /// scheduling virtual-time delivery events instead of a delayer thread,
    /// `now` reads come from the virtual clock, and every mailbox parks its
    /// workers on the scheduler.
    pub scheduler: Option<SchedulerHandle>,
    /// Optional reliable-delivery layer (sequence numbers, ack/retransmit,
    /// receiver-side dedup). Off by default: the lossless fault repertoire
    /// (delay, reorder, duplicate, partition) is deliberately exercised
    /// against the bare protocol — e.g. duplicate storms keep testing
    /// handler idempotency — and only plans that lose messages or crash
    /// nodes need the layer to restore eventual delivery.
    pub reliable: Option<ReliabilityConfig>,
}

impl std::fmt::Debug for TransportConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportConfig")
            .field("nodes", &self.nodes)
            .field("latency", &self.latency)
            .field("seed", &self.seed)
            .field("interposer", &self.interposer)
            .field("scheduler", &self.scheduler.as_ref().map(|_| "sim"))
            .field("reliable", &self.reliable)
            .finish()
    }
}

impl TransportConfig {
    /// A transport for `nodes` nodes with immediate delivery.
    pub fn new(nodes: usize) -> Self {
        TransportConfig {
            nodes,
            latency: LatencyModel::ZERO,
            seed: 0,
            interposer: None,
            scheduler: None,
            reliable: None,
        }
    }

    /// Sets the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the latency sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a fault interposer consulted on every send.
    pub fn interposer(mut self, interposer: Arc<dyn FaultInterposer>) -> Self {
        self.interposer = Some(interposer);
        self
    }

    /// Runs the transport under a simulation scheduler (see
    /// [`TransportConfig::scheduler`]).
    pub fn scheduler(mut self, scheduler: SchedulerHandle) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Enables the reliable-delivery layer (see [`ReliabilityConfig`]).
    pub fn reliable(mut self, reliable: ReliabilityConfig) -> Self {
        self.reliable = Some(reliable);
        self
    }
}

struct Delayed<M> {
    deliver_at: Instant,
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest delivery wins.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

struct DelayerState<M> {
    heap: BinaryHeap<Delayed<M>>,
    rng: StdRng,
    next_seq: u64,
    shutdown: bool,
}

/// One unacknowledged message on a directed link.
struct PendingMsg<M> {
    envelope: Envelope<M>,
    /// Wire attempts so far beyond the initial send.
    attempt: u32,
}

/// Per-directed-link state of the reliable layer: the sender side of the
/// link (sequence counter, unacked messages) and the receiver side
/// (processed-sequence tracking for dedup) live in one entry because both
/// ends of an in-process link belong to the same transport.
struct LinkState<M> {
    next_seq: u64,
    outstanding: HashMap<u64, PendingMsg<M>>,
    /// Receiver side: every sequence number below this has been handed to a
    /// handler exactly once.
    processed_floor: u64,
    /// Receiver side: processed sequence numbers at or above the floor
    /// (out-of-order arrivals); drained into the floor as gaps fill.
    processed: BTreeSet<u64>,
}

impl<M> Default for LinkState<M> {
    fn default() -> Self {
        LinkState {
            next_seq: 0,
            outstanding: HashMap::new(),
            processed_floor: 0,
            processed: BTreeSet::new(),
        }
    }
}

impl<M> LinkState<M> {
    /// Receiver-side dedup: records `seq` as processed; `false` when it
    /// already was (the caller suppresses the duplicate).
    fn record_processed(&mut self, seq: u64) -> bool {
        if seq < self.processed_floor || self.processed.contains(&seq) {
            return false;
        }
        self.processed.insert(seq);
        while self.processed.remove(&self.processed_floor) {
            self.processed_floor += 1;
        }
        true
    }
}

/// A timer or delivery owned by the reliable layer.
enum RelEvent<M> {
    /// Check an outstanding message and put fresh copies on the wire.
    Retransmit { from: usize, to: usize, seq: u64 },
    /// An acknowledgement finished crossing the reverse link: retire the
    /// outstanding message.
    AckArrival { from: usize, to: usize, seq: u64 },
    /// A retransmitted copy finished crossing the wire: enqueue it.
    Deliver { envelope: Envelope<M> },
}

struct RelTimer<M> {
    at: Instant,
    seq: u64,
    event: RelEvent<M>,
}

impl<M> PartialEq for RelTimer<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for RelTimer<M> {}
impl<M> PartialOrd for RelTimer<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for RelTimer<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap; reverse so the earliest timer wins.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

struct RelTimerState<M> {
    heap: BinaryHeap<RelTimer<M>>,
    next_seq: u64,
    shutdown: bool,
}

#[derive(Default)]
struct RelCounters {
    sent: AtomicU64,
    retransmits: AtomicU64,
    acks: AtomicU64,
    dups: AtomicU64,
    gave_up: AtomicU64,
}

/// The transport's reliable-delivery layer (enabled via
/// [`TransportConfig::reliable`]; semantics on [`ReliabilityConfig`]).
///
/// Initial copies ride the transport's normal delivery machinery with a
/// sequence number stamped into the envelope; everything else — acks,
/// retransmissions, retransmitted copies in flight — is scheduled here, as
/// virtual-time events under simulation or on a dedicated timer thread
/// otherwise, so none of it ever touches the mailbox queue counters.
struct ReliableLayer<M> {
    cfg: ReliabilityConfig,
    /// Retransmission schedule: capped exponential, jitter seeded from the
    /// transport seed so simulated runs replay bit-identically.
    backoff: Backoff,
    mailboxes: Vec<Arc<Mailbox<Envelope<M>>>>,
    interposer: Option<Arc<dyn FaultInterposer>>,
    latency: LatencyModel,
    links: Mutex<HashMap<(usize, usize), LinkState<M>>>,
    /// Latency sampler for ack and retransmission crossings, seeded apart
    /// from the forward path's so both draw reproducible sequences.
    rng: Mutex<StdRng>,
    sched: Option<SchedulerHandle>,
    timers: Arc<(Mutex<RelTimerState<M>>, Condvar)>,
    timer_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    counters: RelCounters,
    shutdown: AtomicBool,
}

impl<M: Send + Clone + 'static> ReliableLayer<M> {
    fn new(
        cfg: ReliabilityConfig,
        mailboxes: Vec<Arc<Mailbox<Envelope<M>>>>,
        interposer: Option<Arc<dyn FaultInterposer>>,
        latency: LatencyModel,
        seed: u64,
        sched: Option<SchedulerHandle>,
    ) -> Arc<Self> {
        Arc::new(ReliableLayer {
            backoff: Backoff::exponential(cfg.rto, cfg.cap).with_jitter(seed ^ 0x52_45_4C_49),
            cfg,
            mailboxes,
            interposer,
            latency,
            links: Mutex::new(HashMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x61_63_6B_73)),
            sched,
            timers: Arc::new((
                Mutex::new(RelTimerState {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                    shutdown: false,
                }),
                Condvar::new(),
            )),
            timer_thread: Mutex::new(None),
            counters: RelCounters::default(),
            shutdown: AtomicBool::new(false),
        })
    }

    fn now(&self) -> Instant {
        match &self.sched {
            Some(sched) => sched.now(),
            None => Instant::now(),
        }
    }

    /// Stamps `envelope` with the next sequence number of its link, records
    /// it as outstanding and arms its first retransmission timer. Called on
    /// the send path before the interposer draws the wire plan, so a lost
    /// first attempt is already covered.
    fn register(self: &Arc<Self>, envelope: &mut Envelope<M>) {
        let link = (envelope.from.index(), envelope.to.index());
        let seq = {
            let mut links = self.links.lock();
            let state = links.entry(link).or_default();
            let seq = state.next_seq;
            state.next_seq += 1;
            envelope.rel_seq = Some(seq);
            state.outstanding.insert(
                seq,
                PendingMsg {
                    envelope: envelope.clone(),
                    attempt: 0,
                },
            );
            seq
        };
        self.counters.sent.fetch_add(1, Ordering::Relaxed);
        let at = self.now() + self.backoff.delay(1);
        self.schedule(
            at,
            RelEvent::Retransmit {
                from: link.0,
                to: link.1,
                seq,
            },
        );
    }

    /// The mailbox pop filter: decides whether a popped message reaches the
    /// handler. Unstamped messages always pass. Stamped ones are deduped
    /// against the link's processed set and acknowledged either way — a
    /// duplicate usually means the previous ack was lost on the wire.
    ///
    /// Acking at *pop* time rather than enqueue time is what makes crashes
    /// survivable: a crash purges the destination queue, so everything that
    /// was enqueued but never popped stays unacknowledged and keeps being
    /// retransmitted until the node restarts and processes it.
    fn on_pop(self: &Arc<Self>, envelope: &Envelope<M>) -> bool {
        let Some(seq) = envelope.rel_seq else {
            return true;
        };
        let link = (envelope.from.index(), envelope.to.index());
        let fresh = {
            let mut links = self.links.lock();
            links.entry(link).or_default().record_processed(seq)
        };
        if !fresh {
            self.counters.dups.fetch_add(1, Ordering::Relaxed);
        }
        self.send_ack(envelope.from, envelope.to, seq);
        fresh
    }

    /// Models the ack crossing the reverse link: it draws the interposer's
    /// plan for `to -> from` (acks are lost, delayed and duplicated like any
    /// other traffic) and, if a copy survives, schedules the retirement of
    /// the outstanding message after the reverse latency.
    fn send_ack(self: &Arc<Self>, from: NodeId, to: NodeId, seq: u64) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let now = self.now();
        let plan = match &self.interposer {
            Some(interposer) => interposer.plan(to, from, now),
            None => SendPlan::pass(),
        };
        if plan.is_lost() {
            return;
        }
        let extra = plan.deliveries().first().copied().unwrap_or(Duration::ZERO);
        let delay = self.latency.sample(&mut *self.rng.lock()) + extra;
        self.schedule(
            now + delay,
            RelEvent::AckArrival {
                from: from.index(),
                to: to.index(),
                seq,
            },
        );
    }

    fn on_ack(&self, from: usize, to: usize, seq: u64) {
        let mut links = self.links.lock();
        if let Some(state) = links.get_mut(&(from, to)) {
            if state.outstanding.remove(&seq).is_some() {
                self.counters.acks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A retransmission timer fired: if the message is still outstanding,
    /// put fresh copies on the wire (fresh interposer draw, fresh latency
    /// samples) and arm the next, longer timer. Gives up once the
    /// destination closed or `max_attempts` is exhausted.
    fn on_retransmit(self: &Arc<Self>, from: usize, to: usize, seq: u64) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let (envelope, attempt) = {
            let mut links = self.links.lock();
            let Some(state) = links.get_mut(&(from, to)) else {
                return;
            };
            let Some(pending) = state.outstanding.get_mut(&seq) else {
                return;
            };
            if self.mailboxes[to].is_closed() {
                state.outstanding.remove(&seq);
                return;
            }
            pending.attempt += 1;
            if pending.attempt > self.cfg.max_attempts {
                state.outstanding.remove(&seq);
                self.counters.gave_up.fetch_add(1, Ordering::Relaxed);
                return;
            }
            (pending.envelope.clone(), pending.attempt)
        };
        self.counters.retransmits.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let plan = match &self.interposer {
            Some(interposer) => interposer.plan(envelope.from, envelope.to, now),
            None => SendPlan::pass(),
        };
        for extra in plan.deliveries() {
            let delay = self.latency.sample(&mut *self.rng.lock()) + *extra;
            self.schedule(
                now + delay,
                RelEvent::Deliver {
                    envelope: envelope.clone(),
                },
            );
        }
        self.schedule(
            now + self.backoff.delay(attempt + 1),
            RelEvent::Retransmit { from, to, seq },
        );
    }

    fn run_event(self: &Arc<Self>, event: RelEvent<M>) {
        match event {
            RelEvent::Retransmit { from, to, seq } => self.on_retransmit(from, to, seq),
            RelEvent::AckArrival { from, to, seq } => self.on_ack(from, to, seq),
            RelEvent::Deliver { envelope } => {
                let mailbox = &self.mailboxes[envelope.to.index()];
                let priority = envelope.priority;
                // A push into a closed mailbox is a silent no-op and a push
                // into a crashed one is dropped on purpose — the message
                // stays outstanding and a later retransmission lands it.
                mailbox.push(envelope, priority);
            }
        }
    }

    /// Schedules `event` for `at`: a virtual-time event under simulation, a
    /// timer-heap entry serviced by the layer's timer thread otherwise.
    /// Events hold the layer weakly so a dropped transport stops the
    /// machinery instead of being kept alive by its own timers.
    fn schedule(self: &Arc<Self>, at: Instant, event: RelEvent<M>) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        match &self.sched {
            Some(sched) => {
                let weak = Arc::downgrade(self);
                sched.schedule(
                    at,
                    Box::new(move || {
                        if let Some(layer) = weak.upgrade() {
                            layer.run_event(event);
                        }
                    }),
                );
            }
            None => {
                self.ensure_timer_thread();
                let (lock, cvar) = &*self.timers;
                let mut guard = lock.lock();
                if guard.shutdown {
                    return;
                }
                let seq = guard.next_seq;
                guard.next_seq += 1;
                guard.heap.push(RelTimer { at, seq, event });
                drop(guard);
                cvar.notify_all();
            }
        }
    }

    fn ensure_timer_thread(self: &Arc<Self>) {
        let mut guard = self.timer_thread.lock();
        if guard.is_some() {
            return;
        }
        let weak = Arc::downgrade(self);
        let timers = Arc::clone(&self.timers);
        let handle = std::thread::Builder::new()
            .name("sss-net-reliable".into())
            .spawn(move || Self::timer_loop(weak, timers))
            .expect("failed to spawn reliable-delivery timer thread");
        *guard = Some(handle);
    }

    fn timer_loop(
        weak: std::sync::Weak<ReliableLayer<M>>,
        timers: Arc<(Mutex<RelTimerState<M>>, Condvar)>,
    ) {
        let (lock, cvar) = &*timers;
        let mut guard = lock.lock();
        loop {
            if guard.shutdown {
                return;
            }
            let now = Instant::now();
            if let Some(top) = guard.heap.peek() {
                if top.at <= now {
                    let timer = guard.heap.pop().expect("peeked timer vanished");
                    // Run outside the heap lock: events take the link and
                    // rng locks and may schedule further timers.
                    drop(guard);
                    match weak.upgrade() {
                        Some(layer) => layer.run_event(timer.event),
                        None => return,
                    }
                    guard = lock.lock();
                    continue;
                }
                let wait = top.at - now;
                cvar.wait_for(&mut guard, wait);
            } else {
                cvar.wait_for(&mut guard, Duration::from_millis(50));
            }
        }
    }

    /// Stops the layer: no new timers, timer thread joined, outstanding
    /// messages dropped (shutdown is not a fault to recover from).
    fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        {
            let (lock, cvar) = &*self.timers;
            lock.lock().shutdown = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.timer_thread.lock().take() {
            let _ = handle.join();
        }
        self.links.lock().clear();
    }

    fn stats(&self) -> ReliabilityStats {
        let outstanding = {
            let links = self.links.lock();
            links.values().map(|l| l.outstanding.len() as u64).sum()
        };
        ReliabilityStats {
            sent: self.counters.sent.load(Ordering::Relaxed),
            retransmits: self.counters.retransmits.load(Ordering::Relaxed),
            acks: self.counters.acks.load(Ordering::Relaxed),
            duplicates_suppressed: self.counters.dups.load(Ordering::Relaxed),
            gave_up: self.counters.gave_up.load(Ordering::Relaxed),
            outstanding,
        }
    }
}

/// In-process [`Transport`] built on per-node priority [`Mailbox`]es.
///
/// With a zero [`LatencyModel`] messages are pushed straight into the
/// destination mailbox; with a non-zero model they are staged in a delay
/// wheel serviced by a dedicated thread, which reproduces out-of-order
/// delivery across messages with different sampled delays.
///
/// # Local delivery fast path
///
/// A node frequently messages *itself* (the coordinator is its own 2PC
/// participant, confirmation rounds cover every node, and a colocated
/// client reads local replicas). When a handler has been registered with
/// [`ChannelTransport::set_local_dispatch`], a self-addressed message that
/// would otherwise take the zero-latency fast path is handed to the handler
/// directly on the sending thread — no queueing, no worker wakeup, no
/// payload clone. The fast path is skipped (and the message queued
/// normally) whenever it could be observable: a non-zero latency model, a
/// fault-interposer plan that is not a plain pass, a paused node (pause
/// gates model a node that stops *processing*), or a closed mailbox.
/// Locally delivered messages are counted in
/// [`MailboxStats::local_delivered`] rather than the queue counters.
pub struct ChannelTransport<M> {
    mailboxes: Vec<Arc<Mailbox<Envelope<M>>>>,
    local: Vec<OnceLock<LocalDispatch<M>>>,
    local_delivered: Vec<AtomicU64>,
    /// Per-destination per-message-kind counters, populated when a
    /// classifier has been registered (see
    /// [`ChannelTransport::set_message_classifier`]). Counted once per
    /// logical send at the send entry point — before fault-plan
    /// duplication — covering queued, delayed and locally-dispatched
    /// deliveries alike.
    kind_counts: Vec<[AtomicU64; MESSAGE_KIND_SLOTS]>,
    classifier: OnceLock<fn(&M) -> usize>,
    latency: LatencyModel,
    interposer: Option<Arc<dyn FaultInterposer>>,
    delayer: Option<DelayerHandle<M>>,
    sim: Option<SimCtx>,
    reliable: Option<Arc<ReliableLayer<M>>>,
}

/// Simulation-mode context of a [`ChannelTransport`]: latency turns into
/// virtual-time delivery events on the scheduler instead of entries in the
/// threaded delay wheel.
struct SimCtx {
    sched: SchedulerHandle,
    /// Latency sampler for the simulated path, seeded from the transport
    /// config exactly like the delayer's; kept separate so simulated and
    /// threaded runs each consume their own reproducible draw sequence.
    rng: Mutex<StdRng>,
}

struct DelayerHandle<M> {
    state: Arc<(Mutex<DelayerState<M>>, Condvar)>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl<M: Send + Clone + 'static> ChannelTransport<M> {
    /// Creates a transport for `config.nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the node count is zero.
    pub fn new(config: TransportConfig) -> Self {
        assert!(config.nodes > 0, "cluster must have at least one node");
        let mailboxes: Vec<Arc<Mailbox<Envelope<M>>>> = (0..config.nodes)
            .map(|_| Arc::new(Mailbox::new()))
            .collect();
        let sim = config.scheduler.map(|sched| {
            for mailbox in &mailboxes {
                mailbox.set_scheduler(Arc::clone(&sched));
            }
            SimCtx {
                sched,
                rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
            }
        });
        // Fault interposers can delay individual copies even when the base
        // latency model is zero, so their presence also requires the wheel.
        // Under simulation delays become scheduler events, never a thread.
        let delayer = if sim.is_some() || (config.latency.is_zero() && config.interposer.is_none())
        {
            None
        } else {
            Some(Self::spawn_delayer(config.seed))
        };
        let reliable = config.reliable.map(|rel| {
            let layer = ReliableLayer::new(
                rel,
                mailboxes.clone(),
                config.interposer.clone(),
                config.latency,
                config.seed,
                sim.as_ref().map(|ctx| Arc::clone(&ctx.sched)),
            );
            // Receiver side of the layer: every mailbox filters popped
            // messages through the dedup/ack hook before its workers hand
            // them to handlers.
            for mailbox in &mailboxes {
                let hook = Arc::clone(&layer);
                mailbox.set_pop_filter(Arc::new(move |env: &Envelope<M>| hook.on_pop(env)));
            }
            layer
        });
        ChannelTransport {
            mailboxes,
            local: (0..config.nodes).map(|_| OnceLock::new()).collect(),
            local_delivered: (0..config.nodes).map(|_| AtomicU64::new(0)).collect(),
            kind_counts: (0..config.nodes)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            classifier: OnceLock::new(),
            latency: config.latency,
            interposer: config.interposer,
            delayer,
            sim,
            reliable,
        }
    }

    /// The instant "now" as this transport experiences it: virtual time
    /// under simulation, wall-clock time otherwise.
    fn now(&self) -> Instant {
        match &self.sim {
            Some(ctx) => ctx.sched.now(),
            None => Instant::now(),
        }
    }

    /// Registers the function that maps a message to its per-kind counter
    /// slot (`0..MESSAGE_KIND_SLOTS`; out-of-range results are ignored).
    /// Typically called once at cluster construction with the protocol's
    /// kind index (e.g. `SssMessage::kind_index`); only the first
    /// registration takes effect. Without a classifier the `per_kind`
    /// counters of [`ChannelTransport::mailbox_stats`] stay zero.
    pub fn set_message_classifier(&self, classifier: fn(&M) -> usize) {
        let _ = self.classifier.set(classifier);
    }

    /// Counts `count` logical sends of `payload`'s kind toward destination
    /// `to`, if a classifier is registered.
    fn note_kind(&self, to: NodeId, payload: &M, count: u64) {
        if let Some(classify) = self.classifier.get() {
            let slot = classify(payload);
            if slot < MESSAGE_KIND_SLOTS {
                self.kind_counts[to.index()][slot].fetch_add(count, Ordering::Relaxed);
            }
        }
    }

    /// Registers the handler that receives node `node`'s self-addressed
    /// messages directly (see the type-level docs on the local delivery
    /// fast path). Typically called once per node right after the node's
    /// worker runtime is constructed; only the first registration per node
    /// takes effect.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_local_dispatch(&self, node: NodeId, dispatch: LocalDispatch<M>) {
        let _ = self.local[node.index()].set(dispatch);
    }

    /// The registered local dispatch for `to`, but only when delivering
    /// through it right now is indistinguishable from the mailbox path:
    /// never across a pause or after a close.
    fn local_fast_path(&self, to: NodeId) -> Option<&LocalDispatch<M>> {
        // With the reliable layer on, even self-addressed messages take the
        // queue: their sequence numbers must pass the pop filter so a node
        // that crashes with its own messages in flight gets them back via
        // retransmission (e.g. a coordinator's Decide to itself).
        if self.reliable.is_some() {
            return None;
        }
        let dispatch = self.local.get(to.index())?.get()?;
        let mailbox = &self.mailboxes[to.index()];
        if mailbox.is_closed() || mailbox.pause_control().is_paused() || mailbox.is_crashed() {
            return None;
        }
        Some(dispatch)
    }

    fn spawn_delayer(seed: u64) -> DelayerHandle<M> {
        let state = Arc::new((
            Mutex::new(DelayerState {
                heap: BinaryHeap::new(),
                rng: StdRng::seed_from_u64(seed),
                next_seq: 0,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        DelayerHandle {
            state,
            thread: Mutex::new(None),
        }
    }

    fn ensure_delayer_thread(&self) {
        let Some(delayer) = &self.delayer else { return };
        let mut guard = delayer.thread.lock();
        if guard.is_some() {
            return;
        }
        let state = Arc::clone(&delayer.state);
        let mailboxes: Vec<Arc<Mailbox<Envelope<M>>>> = self.mailboxes.clone();
        let handle = std::thread::Builder::new()
            .name("sss-net-delayer".into())
            .spawn(move || Self::delayer_loop(state, mailboxes))
            .expect("failed to spawn delayer thread");
        *guard = Some(handle);
    }

    fn delayer_loop(
        state: Arc<(Mutex<DelayerState<M>>, Condvar)>,
        mailboxes: Vec<Arc<Mailbox<Envelope<M>>>>,
    ) {
        let (lock, cvar) = &*state;
        let mut guard = lock.lock();
        loop {
            if guard.shutdown && guard.heap.is_empty() {
                return;
            }
            let now = Instant::now();
            if let Some(top) = guard.heap.peek() {
                if top.deliver_at <= now {
                    let delayed = guard.heap.pop().expect("peeked entry vanished");
                    let env = delayed.envelope;
                    let to = env.to.index();
                    // Deliver outside of the heap lock to keep the wheel hot.
                    drop(guard);
                    let priority = env.priority;
                    mailboxes[to].push(env, priority);
                    guard = lock.lock();
                    continue;
                }
                let wait = top.deliver_at - now;
                cvar.wait_for(&mut guard, wait);
            } else {
                cvar.wait_for(&mut guard, Duration::from_millis(50));
            }
        }
    }

    /// Mailbox of node `node`, used by the node runtime to attach workers.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn mailbox(&self, node: NodeId) -> Arc<Mailbox<Envelope<M>>> {
        Arc::clone(&self.mailboxes[node.index()])
    }

    /// Traffic counters of node `node`'s mailbox, including the messages
    /// delivered through the local fast path (which never entered a queue)
    /// and the per-message-kind breakdown (all-zero unless a classifier was
    /// registered with [`ChannelTransport::set_message_classifier`]).
    pub fn mailbox_stats(&self, node: NodeId) -> MailboxStats {
        let mut stats = self.mailboxes[node.index()].stats();
        stats.local_delivered = self.local_delivered[node.index()].load(Ordering::Relaxed);
        for (slot, counter) in stats
            .per_kind
            .iter_mut()
            .zip(self.kind_counts[node.index()].iter())
        {
            *slot = counter.load(Ordering::Relaxed);
        }
        stats
    }

    /// Closes every mailbox and stops the delayer thread.
    ///
    /// In-flight messages already queued in mailboxes are still delivered to
    /// workers that keep draining them; new sends fail with
    /// [`TransportError::Closed`].
    pub fn shutdown(&self) {
        if let Some(layer) = &self.reliable {
            layer.stop();
        }
        if let Some(delayer) = &self.delayer {
            {
                let (lock, cvar) = &*delayer.state;
                lock.lock().shutdown = true;
                cvar.notify_all();
            }
            if let Some(handle) = delayer.thread.lock().take() {
                let _ = handle.join();
            }
        }
        for mb in &self.mailboxes {
            mb.close();
        }
    }

    /// Counters of the reliable-delivery layer; `None` when the transport
    /// runs without one.
    pub fn reliability_stats(&self) -> Option<ReliabilityStats> {
        self.reliable.as_ref().map(|layer| layer.stats())
    }
}

impl<M: Send + Clone + 'static> ChannelTransport<M> {
    /// Stages every copy of `plan` for `payload` into the delay wheel; the
    /// caller holds the wheel lock and is responsible for the wakeup.
    fn stage_delayed(
        &self,
        guard: &mut parking_lot::MutexGuard<'_, DelayerState<M>>,
        envelope: Envelope<M>,
        plan: &SendPlan,
        now: Instant,
    ) {
        let copies = plan.deliveries();
        // The envelope is moved into the last copy; only duplicated copies
        // pay for a clone, keeping the common single-delivery path as cheap
        // as before the interposer hook existed.
        let mut envelope = Some(envelope);
        for (i, extra) in copies.iter().enumerate() {
            let delay = self.latency.sample(&mut guard.rng) + *extra;
            let seq = guard.next_seq;
            guard.next_seq += 1;
            let envelope = if i + 1 == copies.len() {
                envelope
                    .take()
                    .expect("envelope moved before the last copy")
            } else {
                envelope.as_ref().expect("envelope taken early").clone()
            };
            guard.heap.push(Delayed {
                deliver_at: now + delay,
                seq,
                envelope,
            });
        }
    }

    /// Schedules every copy of `plan` for `envelope` as virtual-time
    /// delivery events on the simulation scheduler — the sim-mode
    /// equivalent of [`ChannelTransport::stage_delayed`]. Event ordering is
    /// the scheduler's deterministic `(time, seq)` order, and a copy that
    /// fires after shutdown lands in a closed mailbox where the push is a
    /// silent no-op, matching the threaded delayer's drain-then-drop.
    fn stage_sim(&self, ctx: &SimCtx, envelope: Envelope<M>, plan: &SendPlan, now: Instant) {
        let copies = plan.deliveries();
        let mut envelope = Some(envelope);
        for (i, extra) in copies.iter().enumerate() {
            let delay = self.latency.sample(&mut *ctx.rng.lock()) + *extra;
            let env = if i + 1 == copies.len() {
                envelope
                    .take()
                    .expect("envelope moved before the last copy")
            } else {
                envelope.as_ref().expect("envelope taken early").clone()
            };
            let mailbox = Arc::clone(&self.mailboxes[env.to.index()]);
            ctx.sched.schedule(
                now + delay,
                Box::new(move || {
                    let priority = env.priority;
                    mailbox.push(env, priority);
                }),
            );
        }
    }
}

impl<M: Send + Clone + 'static> Transport<M> for ChannelTransport<M> {
    fn send(
        &self,
        from: NodeId,
        to: NodeId,
        payload: M,
        priority: Priority,
    ) -> Result<(), TransportError> {
        let Some(mailbox) = self.mailboxes.get(to.index()) else {
            return Err(TransportError::UnknownNode(to));
        };
        self.note_kind(to, &payload, 1);
        let mut envelope = Envelope {
            from,
            to,
            priority,
            payload,
            rel_seq: None,
        };
        // Registered before the wire draw: a message whose very first
        // attempt is lost is already outstanding and will be retransmitted.
        if let Some(layer) = &self.reliable {
            layer.register(&mut envelope);
        }
        let plan = match &self.interposer {
            Some(interposer) => interposer.plan(from, to, self.now()),
            None => SendPlan::pass(),
        };
        if plan.is_lost() {
            // Dropped on the wire. With the reliable layer on, the
            // retransmission timer recovers it; without, the caller opted
            // into a lossy network and the message is gone.
            return Ok(());
        }
        if self.latency.is_zero() && plan.is_pass() {
            if from == to {
                if let Some(dispatch) = self.local_fast_path(to) {
                    self.local_delivered[to.index()].fetch_add(1, Ordering::Relaxed);
                    dispatch(envelope);
                    return Ok(());
                }
            }
            return if mailbox.push(envelope, priority) {
                Ok(())
            } else {
                Err(TransportError::Closed)
            };
        }
        if let Some(ctx) = &self.sim {
            if mailbox.is_closed() {
                return Err(TransportError::Closed);
            }
            let now = ctx.sched.now();
            self.stage_sim(ctx, envelope, &plan, now);
            return Ok(());
        }
        self.ensure_delayer_thread();
        let delayer = self
            .delayer
            .as_ref()
            .expect("latency or interposer set but no delayer");
        let (lock, cvar) = &*delayer.state;
        let mut guard = lock.lock();
        if guard.shutdown {
            return Err(TransportError::Closed);
        }
        self.stage_delayed(&mut guard, envelope, &plan, Instant::now());
        cvar.notify_one();
        Ok(())
    }

    fn send_batch(
        &self,
        from: NodeId,
        to: NodeId,
        batch: Vec<M>,
        priority: Priority,
    ) -> Result<(), TransportError> {
        let Some(mailbox) = self.mailboxes.get(to.index()) else {
            return Err(TransportError::UnknownNode(to));
        };
        if batch.is_empty() {
            return Ok(());
        }
        let mut envelopes: Vec<Envelope<M>> = batch
            .into_iter()
            .map(|payload| Envelope {
                from,
                to,
                priority,
                payload,
                rel_seq: None,
            })
            .collect();
        for env in &envelopes {
            self.note_kind(to, &env.payload, 1);
        }
        if let Some(layer) = &self.reliable {
            for env in &mut envelopes {
                layer.register(env);
            }
        }
        // The interposer is consulted once per message — a batch is a
        // delivery optimization, not a unit the fault model can observe, so
        // `sss-faults` determinism (per-link RNG draw sequences, reorder and
        // duplicate semantics) is identical to a sequence of single sends.
        let now = self.now();
        let plans: Vec<SendPlan> = match &self.interposer {
            Some(interposer) => envelopes
                .iter()
                .map(|_| interposer.plan(from, to, now))
                .collect(),
            None => Vec::new(),
        };
        // Wire loss strikes per message: lost envelopes leave the batch here
        // (retransmission recovers them when the reliable layer is on).
        let mut plans = plans;
        if plans.iter().any(|p| p.is_lost()) {
            let mut kept_envelopes = Vec::with_capacity(envelopes.len());
            let mut kept_plans = Vec::with_capacity(plans.len());
            for (env, plan) in envelopes.into_iter().zip(plans) {
                if !plan.is_lost() {
                    kept_envelopes.push(env);
                    kept_plans.push(plan);
                }
            }
            envelopes = kept_envelopes;
            plans = kept_plans;
            if envelopes.is_empty() {
                return Ok(());
            }
        }
        let all_pass = plans.iter().all(|p| p.is_pass());
        if self.latency.is_zero() && all_pass {
            if from == to {
                if let Some(dispatch) = self.local_fast_path(to) {
                    self.local_delivered[to.index()]
                        .fetch_add(envelopes.len() as u64, Ordering::Relaxed);
                    for envelope in envelopes {
                        dispatch(envelope);
                    }
                    return Ok(());
                }
            }
            return if mailbox.push_batch(envelopes, priority) {
                Ok(())
            } else {
                Err(TransportError::Closed)
            };
        }
        if let Some(ctx) = &self.sim {
            if mailbox.is_closed() {
                return Err(TransportError::Closed);
            }
            let pass = SendPlan::pass();
            for (i, envelope) in envelopes.into_iter().enumerate() {
                let plan = plans.get(i).unwrap_or(&pass);
                self.stage_sim(ctx, envelope, plan, now);
            }
            return Ok(());
        }
        self.ensure_delayer_thread();
        let delayer = self
            .delayer
            .as_ref()
            .expect("latency or interposer set but no delayer");
        let (lock, cvar) = &*delayer.state;
        let mut guard = lock.lock();
        if guard.shutdown {
            return Err(TransportError::Closed);
        }
        let pass = SendPlan::pass();
        for (i, envelope) in envelopes.into_iter().enumerate() {
            let plan = plans.get(i).unwrap_or(&pass);
            self.stage_delayed(&mut guard, envelope, plan, now);
        }
        cvar.notify_one();
        Ok(())
    }

    fn num_nodes(&self) -> usize {
        self.mailboxes.len()
    }
}

impl<M> std::fmt::Debug for ChannelTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("nodes", &self.mailboxes.len())
            .field("latency", &self.latency)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Polls `cond` until it holds or a generous deadline elapses; returns
    /// whether it held. Replaces fixed sleeps: tests wait on observable
    /// state (mailbox depth) under a deadline instead of assuming how long
    /// the delayer thread needs.
    fn eventually(cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    #[test]
    fn immediate_delivery_without_latency() {
        let t: ChannelTransport<u32> = ChannelTransport::new(TransportConfig::new(2));
        t.send(NodeId(0), NodeId(1), 99, Priority::Normal).unwrap();
        let env = t.mailbox(NodeId(1)).pop().unwrap();
        assert_eq!(env.payload, 99);
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.to, NodeId(1));
    }

    #[test]
    fn unknown_destination_is_rejected() {
        let t: ChannelTransport<u32> = ChannelTransport::new(TransportConfig::new(2));
        assert_eq!(
            t.send(NodeId(0), NodeId(5), 1, Priority::Normal),
            Err(TransportError::UnknownNode(NodeId(5)))
        );
    }

    #[test]
    fn send_after_shutdown_fails() {
        let t: ChannelTransport<u32> = ChannelTransport::new(TransportConfig::new(1));
        t.shutdown();
        assert_eq!(
            t.send(NodeId(0), NodeId(0), 1, Priority::Normal),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn multicast_reaches_every_target() {
        let t: ChannelTransport<&'static str> = ChannelTransport::new(TransportConfig::new(3));
        t.multicast(
            NodeId(0),
            [NodeId(1), NodeId(2)],
            "prepare",
            Priority::Normal,
        )
        .unwrap();
        assert_eq!(t.mailbox(NodeId(1)).pop().unwrap().payload, "prepare");
        assert_eq!(t.mailbox(NodeId(2)).pop().unwrap().payload, "prepare");
        assert!(t.mailbox(NodeId(0)).is_empty());
    }

    #[test]
    fn delayed_delivery_eventually_arrives() {
        let config = TransportConfig::new(2)
            .latency(LatencyModel::new(
                Duration::from_millis(2),
                Duration::from_millis(1),
            ))
            .seed(3);
        let t: ChannelTransport<u32> = ChannelTransport::new(config);
        let start = Instant::now();
        t.send(NodeId(0), NodeId(1), 7, Priority::High).unwrap();
        let env = t.mailbox(NodeId(1)).pop().unwrap();
        assert_eq!(env.payload, 7);
        assert!(start.elapsed() >= Duration::from_millis(2));
        t.shutdown();
    }

    #[test]
    fn delayed_messages_preserve_priority_class() {
        let config = TransportConfig::new(1).latency(LatencyModel::new(
            Duration::from_micros(100),
            Duration::ZERO,
        ));
        let t: ChannelTransport<u32> = ChannelTransport::new(config);
        t.send(NodeId(0), NodeId(0), 1, Priority::Low).unwrap();
        t.send(NodeId(0), NodeId(0), 2, Priority::High).unwrap();
        // Wait for both to land in the mailbox, then the high-priority one
        // must be popped first even though it was sent second.
        assert!(eventually(|| t.mailbox(NodeId(0)).len() == 2));
        assert_eq!(t.mailbox(NodeId(0)).pop().unwrap().payload, 2);
        assert_eq!(t.mailbox(NodeId(0)).pop().unwrap().payload, 1);
        t.shutdown();
    }

    #[derive(Debug)]
    struct DuplicateEverything {
        extra: Duration,
    }

    impl FaultInterposer for DuplicateEverything {
        fn plan(&self, _from: NodeId, _to: NodeId, _now: Instant) -> SendPlan {
            SendPlan::pass().duplicate(self.extra)
        }
    }

    #[derive(Debug)]
    struct HoldLink {
        from: NodeId,
        to: NodeId,
        hold: Duration,
    }

    impl FaultInterposer for HoldLink {
        fn plan(&self, from: NodeId, to: NodeId, _now: Instant) -> SendPlan {
            if from == self.from && to == self.to {
                SendPlan::delayed(self.hold)
            } else {
                SendPlan::pass()
            }
        }
    }

    #[test]
    fn interposer_duplicates_are_delivered_twice() {
        let config = TransportConfig::new(2).interposer(Arc::new(DuplicateEverything {
            extra: Duration::from_micros(100),
        }));
        let t: ChannelTransport<u32> = ChannelTransport::new(config);
        t.send(NodeId(0), NodeId(1), 5, Priority::Normal).unwrap();
        let first = t.mailbox(NodeId(1)).pop().unwrap();
        let second = t.mailbox(NodeId(1)).pop().unwrap();
        assert_eq!((first.payload, second.payload), (5, 5));
        t.shutdown();
    }

    #[test]
    fn interposer_delay_holds_only_the_faulted_link() {
        let hold = Duration::from_millis(300);
        let config = TransportConfig::new(3).interposer(Arc::new(HoldLink {
            from: NodeId(0),
            to: NodeId(1),
            hold,
        }));
        let t: ChannelTransport<u32> = ChannelTransport::new(config);
        let start = Instant::now();
        // Send on the faulted link first: if its hold leaked onto other
        // links, the clean message below would be stuck behind it.
        t.send(NodeId(0), NodeId(1), 2, Priority::Normal).unwrap();
        t.send(NodeId(0), NodeId(2), 1, Priority::Normal).unwrap();
        let clean = t.mailbox(NodeId(2)).pop().unwrap();
        assert_eq!(clean.payload, 1);
        assert!(
            t.mailbox(NodeId(1)).is_empty() || start.elapsed() >= hold,
            "the clean link must not inherit the faulted link's delay"
        );
        let held = t.mailbox(NodeId(1)).pop().unwrap();
        assert_eq!(held.payload, 2);
        assert!(start.elapsed() >= hold, "the faulted link must be held");
        t.shutdown();
    }

    #[test]
    fn empty_send_plan_normalizes_to_pass() {
        assert_eq!(SendPlan::copies(Vec::new()), SendPlan::pass());
        assert!(SendPlan::pass().is_pass());
        assert!(!SendPlan::delayed(Duration::from_millis(1)).is_pass());
        assert_eq!(
            SendPlan::pass()
                .duplicate(Duration::ZERO)
                .deliveries()
                .len(),
            2
        );
        let lost = SendPlan::lost();
        assert!(lost.is_lost());
        assert!(!lost.is_pass());
        assert!(lost.deliveries().is_empty());
        assert!(lost.duplicate(Duration::ZERO).deliveries().is_empty());
        assert!(!SendPlan::pass().is_lost());
    }

    #[test]
    fn shutdown_is_idempotent() {
        let config = TransportConfig::new(1)
            .latency(LatencyModel::new(Duration::from_micros(50), Duration::ZERO));
        let t: ChannelTransport<u32> = ChannelTransport::new(config);
        t.send(NodeId(0), NodeId(0), 1, Priority::Normal).unwrap();
        t.shutdown();
        t.shutdown();
        assert_eq!(
            t.send(NodeId(0), NodeId(0), 2, Priority::Normal),
            Err(TransportError::Closed)
        );
    }

    #[test]
    fn stats_visible_through_transport() {
        let t: ChannelTransport<u32> = ChannelTransport::new(TransportConfig::new(1));
        t.send(NodeId(0), NodeId(0), 1, Priority::Normal).unwrap();
        assert_eq!(t.mailbox_stats(NodeId(0)).total_enqueued(), 1);
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn classifier_attributes_sends_per_kind() {
        let t: ChannelTransport<u32> = ChannelTransport::new(TransportConfig::new(2));
        // Without a classifier the breakdown stays zero.
        t.send(NodeId(0), NodeId(1), 3, Priority::Normal).unwrap();
        assert_eq!(t.mailbox_stats(NodeId(1)).per_kind, [0; 8]);
        // Classify even payloads into slot 0, odd into slot 1.
        t.set_message_classifier(|m| (*m % 2) as usize);
        t.send(NodeId(0), NodeId(1), 4, Priority::Normal).unwrap();
        t.send_batch(NodeId(0), NodeId(1), vec![5, 6, 7], Priority::Normal)
            .unwrap();
        let stats = t.mailbox_stats(NodeId(1));
        assert_eq!(stats.per_kind[0], 2, "payloads 4 and 6");
        assert_eq!(stats.per_kind[1], 2, "payloads 5 and 7");
        assert_eq!(stats.total_enqueued(), 5);
    }
}
