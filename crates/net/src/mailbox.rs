//! Priority mailboxes: one queue per message class, drained by worker threads.
//!
//! All queues of a mailbox live behind a single mutex with one condition
//! variable, which buys three properties the earlier channel-per-class
//! implementation lacked:
//!
//! * **Wakeups are immediate for every class.** A worker parked on an empty
//!   mailbox is notified by the next push regardless of its priority; there
//!   is no polling interval on the pop path.
//! * **Batched draining.** [`Mailbox::pop_batch`] hands a worker up to K
//!   messages of the same (highest non-empty) priority class per wakeup, so
//!   the per-message synchronization cost is amortized under load while the
//!   strict priority bias is preserved.
//! * **Coherent statistics.** Enqueue/dequeue counters are updated and
//!   snapshotted under the queue mutex, so a [`MailboxStats`] snapshot can
//!   never observe more dequeues than enqueues.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Condvar, Mutex};
use sss_vclock::runtime::SchedulerHandle;

/// Write-once slot for an optional simulation scheduler, shared by the
/// blocking primitives of this crate. When set (the transport attaches it at
/// construction under a simulated runtime), waiters park on the scheduler
/// instead of a condvar and producers wake through it, so a simulated
/// mailbox never blocks a real thread outside the scheduler's control.
#[derive(Default)]
pub(crate) struct SchedCell(OnceLock<SchedulerHandle>);

impl SchedCell {
    pub(crate) fn set(&self, scheduler: SchedulerHandle) {
        let _ = self.0.set(scheduler);
    }

    pub(crate) fn get(&self) -> Option<&SchedulerHandle> {
        self.0.get()
    }

    /// Wakes every task parked on the scheduler, if one is attached.
    pub(crate) fn wake(&self) {
        if let Some(scheduler) = self.0.get() {
            scheduler.wake();
        }
    }
}

impl std::fmt::Debug for SchedCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SchedCell")
            .field(&self.0.get().map(|_| "sim"))
            .finish()
    }
}

/// Default number of messages a worker drains per mailbox wakeup (the K of
/// [`Mailbox::pop_batch`]); engines expose it as a tuning knob
/// (`delivery_batch`). Batch size 1 reproduces one-message-per-wakeup
/// delivery exactly.
pub const DEFAULT_DELIVERY_BATCH: usize = 16;

/// Number of per-message-kind counter slots carried by [`MailboxStats`].
///
/// Kept as a fixed array so the stats stay `Copy`; protocols classify their
/// messages into slot indices via
/// [`ChannelTransport::set_message_classifier`](crate::ChannelTransport::set_message_classifier)
/// and publish the slot labels alongside. Unused slots stay zero.
pub const MESSAGE_KIND_SLOTS: usize = 8;

/// A pause gate shared between a [`Mailbox`] and a fault injector.
///
/// While paused, [`Mailbox::pop`] stops handing out messages — the node's
/// workers idle and traffic accumulates in the queues, which models a node
/// that is alive (messages addressed to it are not lost) but not making
/// progress (GC pause, CPU starvation, VM migration). Pausing never loses
/// messages: once [`PauseControl::resume`] is called the workers drain the
/// backlog in priority order. Closing the mailbox overrides the pause so
/// shutdown can never deadlock on a paused node.
///
/// Waiters park on a condition variable while paused; [`PauseControl::resume`]
/// (and a mailbox close) wakes them, so a paused node burns no CPU and its
/// resume latency is one wakeup, not a poll interval.
#[derive(Debug, Default)]
pub struct PauseControl {
    paused: AtomicBool,
    /// Guards the pause-state transitions observed by parked waiters; held
    /// only while flipping `paused` or parking, never across user code. The
    /// guarded count is the number of threads currently parked on the gate,
    /// which gives tests a deadline-based way to wait for "worker reached
    /// the gate" instead of sleeping and hoping.
    waiters: Mutex<usize>,
    resumed: Condvar,
    /// Simulation scheduler, when the owning mailbox runs under one:
    /// waiters park on it instead of `resumed`.
    sched: SchedCell,
}

impl PauseControl {
    /// Creates a control in the running (not paused) state.
    pub fn new() -> Self {
        PauseControl::default()
    }

    /// Stops the associated mailbox from handing out messages.
    pub fn pause(&self) {
        let _guard = self.waiters.lock();
        self.paused.store(true, Ordering::Release);
    }

    /// Lets the associated mailbox hand out messages again, waking every
    /// parked worker.
    pub fn resume(&self) {
        {
            let _guard = self.waiters.lock();
            self.paused.store(false, Ordering::Release);
        }
        self.resumed.notify_all();
        self.sched.wake();
    }

    /// `true` while paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }

    /// Parks the calling thread until the control is resumed or `closed`
    /// becomes true. The flag is re-checked under the waiter lock, so a
    /// resume (or a close that calls [`PauseControl::wake_all`] after
    /// setting the flag) can never be missed.
    ///
    /// `crashed` is the owning mailbox's crash flag: a crash-stopped node's
    /// workers idle on the same gate (a restart calls
    /// [`PauseControl::wake_all`] to release them), so pause and crash share
    /// one parking spot.
    pub(crate) fn block_while_paused(&self, closed: &AtomicBool, crashed: &AtomicBool) {
        let gated = || {
            (self.paused.load(Ordering::Acquire) || crashed.load(Ordering::Acquire))
                && !closed.load(Ordering::Acquire)
        };
        if let Some(scheduler) = self.sched.get() {
            // Simulated: park the task; resume/close wake it to re-check.
            // Single-token execution makes the check-then-park race-free.
            while gated() {
                scheduler.park(None);
            }
            return;
        }
        let mut guard = self.waiters.lock();
        *guard += 1;
        while gated() {
            self.resumed.wait(&mut guard);
        }
        *guard -= 1;
    }

    /// Number of threads currently parked on the pause gate (test hook).
    #[cfg(test)]
    fn parked(&self) -> usize {
        *self.waiters.lock()
    }

    /// Wakes every parked waiter without changing the pause state; called by
    /// [`Mailbox::close`] so a close always unblocks paused workers.
    pub(crate) fn wake_all(&self) {
        let _guard = self.waiters.lock();
        drop(_guard);
        self.resumed.notify_all();
        self.sched.wake();
    }
}

/// Priority class of a protocol message.
///
/// The SSS implementation assigns "priorities to different messages and
/// avoid\[s\] protocol slow down in some critical steps due to network
/// congestion caused by lower priority messages (e.g., the Remove message
/// has a very high priority because it enables external commits)" (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Critical protocol steps: `Remove`, `Decide`, commit acknowledgements.
    High,
    /// Regular protocol traffic: reads, prepares, votes.
    Normal,
    /// Background traffic: garbage collection, statistics.
    Low,
}

impl Priority {
    /// All priorities, highest first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Counters describing the traffic that went through a [`Mailbox`].
///
/// All counters are monotonic; harnesses snapshot them at window boundaries
/// and [`MailboxStats::diff`]. Snapshots are taken under the mailbox's queue
/// mutex, so a single snapshot is always *coherent*: per class,
/// `dequeued <= enqueued` (see [`MailboxStats::is_coherent`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MailboxStats {
    /// Messages enqueued per priority class (high, normal, low).
    pub enqueued: [u64; 3],
    /// Messages dequeued per priority class (high, normal, low).
    pub dequeued: [u64; 3],
    /// Messages currently sitting in the queues per priority class — a
    /// *gauge*, not a counter, snapshotted under the same mutex as the
    /// counters so `queued[i] == enqueued[i] - dequeued[i]` holds exactly
    /// per snapshot. Carrying the backlog in the snapshot is what lets a
    /// window diff be reconciled exactly (see [`MailboxStats::conserves`]):
    /// without it, backlog draining inside a window shows up as more
    /// dequeues than enqueues with nothing to balance the books against.
    pub queued: [u64; 3],
    /// Enqueue operations: each push or push_batch counts once, however
    /// many messages it carried.
    pub enqueue_ops: u64,
    /// Dequeue operations (worker wakeups that drained at least one
    /// message): each pop or non-empty pop_batch counts once.
    pub dequeue_ops: u64,
    /// Messages delivered directly to a colocated handler without ever
    /// entering a queue (the transport's local fast path); not included in
    /// `enqueued`/`dequeued`.
    pub local_delivered: u64,
    /// Messages sent to this mailbox per protocol-message kind, as
    /// classified by the transport's message classifier (see
    /// [`MESSAGE_KIND_SLOTS`]). Counted once per logical send — queued and
    /// locally-delivered messages both — so with no fault-injected
    /// duplication `sum(per_kind) == total_enqueued + local_delivered`.
    /// All-zero when no classifier is registered.
    pub per_kind: [u64; MESSAGE_KIND_SLOTS],
}

impl MailboxStats {
    /// Total number of messages enqueued across all classes.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.iter().sum()
    }

    /// Total number of messages dequeued across all classes.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.iter().sum()
    }

    /// Average messages drained per dequeue wakeup; 0 when nothing was
    /// dequeued. The direct signal for how much batching ([`Mailbox::pop_batch`])
    /// amortizes worker wakeups.
    pub fn messages_per_wakeup(&self) -> f64 {
        if self.dequeue_ops == 0 {
            0.0
        } else {
            self.total_dequeued() as f64 / self.dequeue_ops as f64
        }
    }

    /// `true` when the snapshot is internally consistent: no class has
    /// observed more dequeues than enqueues. Snapshots taken through
    /// [`Mailbox::stats`] always are; the benchmark harness asserts it.
    pub fn is_coherent(&self) -> bool {
        self.enqueued
            .iter()
            .zip(self.dequeued.iter())
            .all(|(e, d)| d <= e)
    }

    /// Exact message conservation between two snapshots of the same mailbox
    /// (or of the same *set* of mailboxes merged node-by-node): per class,
    /// every message queued at the `earlier` snapshot or enqueued in the
    /// window was either dequeued in the window or is still queued at the
    /// `later` snapshot. This is the accounting identity that window diffs
    /// alone cannot express — a diff with `dequeued > enqueued` is backlog
    /// from before the window draining inside it, and the `queued` gauges
    /// on both sides are exactly what balance the books. The identity is
    /// linear, so it holds for cluster-merged totals as long as each node's
    /// earlier/later snapshots are paired.
    pub fn conserves(earlier: &MailboxStats, later: &MailboxStats) -> bool {
        let window = later.diff(earlier);
        (0..3)
            .all(|i| earlier.queued[i] + window.enqueued[i] == window.dequeued[i] + later.queued[i])
    }

    /// Total number of messages currently queued across all classes (the
    /// snapshot's backlog gauge).
    pub fn total_queued(&self) -> u64 {
        self.queued.iter().sum()
    }

    /// Entry-wise sum with `other`, used to aggregate per-node mailboxes
    /// into a cluster total. The `queued` gauges add up too: the merged
    /// value is the cluster-wide backlog at (approximately) snapshot time.
    pub fn merge(&mut self, other: &MailboxStats) {
        for i in 0..3 {
            self.enqueued[i] += other.enqueued[i];
            self.dequeued[i] += other.dequeued[i];
            self.queued[i] += other.queued[i];
        }
        self.enqueue_ops += other.enqueue_ops;
        self.dequeue_ops += other.dequeue_ops;
        self.local_delivered += other.local_delivered;
        for i in 0..MESSAGE_KIND_SLOTS {
            self.per_kind[i] += other.per_kind[i];
        }
    }

    /// Counter difference `self - earlier` (entry-wise, saturating). The
    /// counters are monotonic and never reset; harnesses snapshot them at
    /// the start and end of a measured window and diff so per-window
    /// numbers exclude warm-up traffic. (A *window* diff may legitimately
    /// show more dequeues than enqueues for a class — backlog enqueued
    /// before the window can drain inside it; [`MailboxStats::conserves`]
    /// reconciles the two snapshots exactly — which is why coherence is
    /// asserted on snapshots, not on diffs.) The `queued` field is a gauge,
    /// not a counter: the diff keeps the *later* snapshot's value, i.e. the
    /// backlog at the end of the window.
    pub fn diff(&self, earlier: &MailboxStats) -> MailboxStats {
        let mut out = MailboxStats::default();
        for i in 0..3 {
            out.enqueued[i] = self.enqueued[i].saturating_sub(earlier.enqueued[i]);
            out.dequeued[i] = self.dequeued[i].saturating_sub(earlier.dequeued[i]);
        }
        out.queued = self.queued;
        out.enqueue_ops = self.enqueue_ops.saturating_sub(earlier.enqueue_ops);
        out.dequeue_ops = self.dequeue_ops.saturating_sub(earlier.dequeue_ops);
        out.local_delivered = self.local_delivered.saturating_sub(earlier.local_delivered);
        for i in 0..MESSAGE_KIND_SLOTS {
            out.per_kind[i] = self.per_kind[i].saturating_sub(earlier.per_kind[i]);
        }
        out
    }
}

/// The queues and counters of a mailbox, all behind one mutex.
#[derive(Debug)]
struct MailboxState<M> {
    queues: [VecDeque<M>; 3],
    enqueued: [u64; 3],
    dequeued: [u64; 3],
    enqueue_ops: u64,
    dequeue_ops: u64,
    /// Threads currently parked on `ready` waiting for traffic; lets tests
    /// wait for "popper is parked" with a deadline instead of sleeping.
    waiters: usize,
}

impl<M> MailboxState<M> {
    /// Drains up to `max` messages of the highest non-empty priority class
    /// into `out`; returns how many were taken (0 when every queue is
    /// empty). Strict bias: a batch never mixes classes, and a lower class
    /// is touched only when every higher one is empty.
    fn drain_highest(&mut self, max: usize, out: &mut Vec<M>) -> usize {
        for p in Priority::ALL {
            let idx = p.index();
            if !self.queues[idx].is_empty() {
                let take = max.min(self.queues[idx].len());
                out.extend(self.queues[idx].drain(..take));
                self.dequeued[idx] += take as u64;
                self.dequeue_ops += 1;
                return take;
            }
        }
        0
    }

    fn pop_highest(&mut self) -> Option<M> {
        for p in Priority::ALL {
            let idx = p.index();
            if let Some(msg) = self.queues[idx].pop_front() {
                self.dequeued[idx] += 1;
                self.dequeue_ops += 1;
                return Some(msg);
            }
        }
        None
    }
}

/// A multi-queue mailbox owned by one logical node.
///
/// Messages are pushed with a [`Priority`]; worker threads pop messages with
/// a strict priority bias (high before normal before low). The mailbox can be
/// closed, after which pops drain remaining messages and then return `None`.
pub struct Mailbox<M> {
    state: Mutex<MailboxState<M>>,
    ready: Condvar,
    closed: AtomicBool,
    /// `true` while the owning node is crash-stopped: pushes are silently
    /// dropped (the wire cannot tell a crashed machine from a slow one) and
    /// workers idle on the pause gate. Unlike `closed`, a crash is
    /// reversible — [`Mailbox::restart`] clears it.
    crashed: AtomicBool,
    pause: Arc<PauseControl>,
    /// Simulation scheduler, when this mailbox runs under one: poppers park
    /// on it instead of `ready`, pushers wake through it.
    sched: SchedCell,
    /// Optional delivery filter consulted on every popped message, *outside*
    /// the queue lock: `false` means the message is consumed (it counts as
    /// dequeued) but never handed to the caller. The transport's
    /// reliable-delivery layer registers its dedup/ack hook here so
    /// duplicate retransmissions die at the mailbox boundary.
    filter: OnceLock<PopFilter<M>>,
}

/// A registered pop-time delivery filter (see [`Mailbox::set_pop_filter`]):
/// `false` consumes the message without handing it to the popper.
pub type PopFilter<M> = Arc<dyn Fn(&M) -> bool + Send + Sync>;

impl<M: Send> Mailbox<M> {
    /// Creates an empty, open mailbox.
    pub fn new() -> Self {
        Mailbox {
            state: Mutex::new(MailboxState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                enqueued: [0; 3],
                dequeued: [0; 3],
                enqueue_ops: 0,
                dequeue_ops: 0,
                waiters: 0,
            }),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            pause: Arc::new(PauseControl::new()),
            sched: SchedCell::default(),
            filter: OnceLock::new(),
        }
    }

    /// Registers the delivery filter (write-once; later calls are no-ops).
    /// See the field docs: filtered-out messages are dequeued and dropped,
    /// never returned from a pop. The filter runs outside the queue lock,
    /// so it may take its own locks or schedule events.
    pub fn set_pop_filter(&self, filter: PopFilter<M>) {
        let _ = self.filter.set(filter);
    }

    /// Applies the delivery filter to one popped message; `true` without a
    /// filter. Must be called without the queue lock held.
    fn passes_filter(&self, msg: &M) -> bool {
        match self.filter.get() {
            Some(filter) => filter(msg),
            None => true,
        }
    }

    /// Crash-stops the mailbox: every queued message is destroyed (a crash
    /// loses in-flight traffic, unlike a pause) and until
    /// [`Mailbox::restart`] all pushes are silently dropped — senders cannot
    /// distinguish a crashed peer from a slow link, which is exactly the
    /// ambiguity the reliable-delivery layer's retransmissions resolve.
    /// Workers idle on the pause gate while crashed. Purged messages are
    /// counted as dequeued so [`MailboxStats::conserves`] keeps holding
    /// across crash windows.
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::Release);
        let purged = {
            let mut state = self.state.lock();
            let mut purged = 0u64;
            for idx in 0..3 {
                let n = state.queues[idx].len() as u64;
                state.queues[idx].clear();
                state.dequeued[idx] += n;
                purged += n;
            }
            if purged > 0 {
                state.dequeue_ops += 1;
            }
            purged
        };
        let _ = purged;
        // Wake parked poppers so they migrate from the ready queue to the
        // crash gate (mirrors how a pause landing mid-park re-gates).
        self.ready.notify_all();
        self.sched.wake();
    }

    /// Clears a crash-stop: pushes are accepted again and parked workers
    /// resume draining. The queues start empty — everything sent during the
    /// crash window is gone for good.
    pub fn restart(&self) {
        self.crashed.store(false, Ordering::Release);
        self.pause.wake_all();
        self.ready.notify_all();
        self.sched.wake();
    }

    /// `true` while crash-stopped (between [`Mailbox::crash`] and
    /// [`Mailbox::restart`]).
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Attaches a simulation scheduler (write-once; later calls are no-ops).
    /// From then on blocked poppers park on the scheduler — which models
    /// them as cooperative tasks the simulator can account for — and every
    /// state change (push, resume, close) wakes parked tasks through it.
    pub fn set_scheduler(&self, scheduler: SchedulerHandle) {
        self.pause.sched.set(Arc::clone(&scheduler));
        self.sched.set(scheduler);
    }

    /// The simulation scheduler attached to this mailbox, if any.
    pub fn scheduler(&self) -> Option<SchedulerHandle> {
        self.sched.get().cloned()
    }

    /// The pause gate of this mailbox, shared with fault injectors. Pushes
    /// are unaffected by a pause; only [`Mailbox::pop`] stops handing out
    /// messages (the node keeps receiving but stops processing).
    pub fn pause_control(&self) -> Arc<PauseControl> {
        Arc::clone(&self.pause)
    }

    /// Enqueues `msg` in the queue of class `priority`.
    ///
    /// Returns `false` if the mailbox has been closed (the message is
    /// dropped), `true` otherwise.
    pub fn push(&self, msg: M, priority: Priority) -> bool {
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        if self.crashed.load(Ordering::Acquire) {
            // A crashed node's NIC is off: the message vanishes, but the
            // sender observes success — loss, not rejection.
            return true;
        }
        let idx = priority.index();
        {
            let mut state = self.state.lock();
            state.queues[idx].push_back(msg);
            state.enqueued[idx] += 1;
            state.enqueue_ops += 1;
        }
        self.ready.notify_one();
        self.sched.wake();
        true
    }

    /// Enqueues every message of `msgs` in the queue of class `priority`
    /// with a single lock acquisition and a single worker wakeup round —
    /// the enqueue half of batched delivery.
    ///
    /// Returns `false` if the mailbox has been closed (the whole batch is
    /// dropped), `true` otherwise. An empty batch is a no-op.
    pub fn push_batch(&self, msgs: impl IntoIterator<Item = M>, priority: Priority) -> bool {
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        if self.crashed.load(Ordering::Acquire) {
            return true;
        }
        let idx = priority.index();
        let pushed = {
            let mut state = self.state.lock();
            let before = state.queues[idx].len();
            state.queues[idx].extend(msgs);
            let pushed = state.queues[idx].len() - before;
            if pushed > 0 {
                state.enqueued[idx] += pushed as u64;
                state.enqueue_ops += 1;
            }
            pushed
        };
        match pushed {
            0 => {}
            1 => self.ready.notify_one(),
            _ => self.ready.notify_all(),
        }
        if pushed > 0 {
            self.sched.wake();
        }
        true
    }

    /// Pops the next message, honoring the priority bias.
    ///
    /// Blocks until a message arrives or the mailbox is closed *and* empty,
    /// in which case `None` is returned.
    pub fn pop(&self) -> Option<M> {
        'outer: loop {
            // A paused or crashed node stops draining its queues (fault
            // injection); the close flag overrides both so shutdown always
            // drains.
            if self.gated() {
                self.pause.block_while_paused(&self.closed, &self.crashed);
                continue;
            }
            let mut state = self.state.lock();
            loop {
                // Re-checked after every wakeup so a pause that lands while
                // this worker is parked gates the messages behind it.
                if self.gated() {
                    // Re-park on the pause gate instead of the ready queue.
                    break;
                }
                if let Some(msg) = state.pop_highest() {
                    // Filter outside the queue lock (it may take locks of
                    // its own); a filtered-out message was consumed, keep
                    // popping.
                    drop(state);
                    if self.passes_filter(&msg) {
                        return Some(msg);
                    }
                    continue 'outer;
                }
                if self.closed.load(Ordering::Acquire) {
                    return None;
                }
                match self.sched.get() {
                    None => {
                        state.waiters += 1;
                        self.ready.wait(&mut state);
                        state.waiters -= 1;
                    }
                    Some(scheduler) => {
                        // Simulated: release the lock and park the task;
                        // single-token execution means no push can slip in
                        // between the empty check and the park.
                        let scheduler = Arc::clone(scheduler);
                        drop(state);
                        scheduler.park(None);
                        break;
                    }
                }
            }
        }
    }

    /// Pops up to `max` messages of the *same* (highest non-empty) priority
    /// class into `out`, blocking until at least one message is available or
    /// the mailbox is closed and empty.
    ///
    /// Returns the number of messages appended to `out`; 0 means the
    /// mailbox is closed and drained and the caller should stop. Strict
    /// priority order is preserved: a batch never mixes classes and a
    /// lower-priority queue is only drained when every higher one is empty
    /// at that instant.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<M>) -> usize {
        assert!(max > 0, "pop_batch needs a non-zero batch size");
        'outer: loop {
            if self.gated() {
                self.pause.block_while_paused(&self.closed, &self.crashed);
                continue;
            }
            let mut state = self.state.lock();
            loop {
                if self.gated() {
                    break;
                }
                let taken = state.drain_highest(max, out);
                if taken > 0 {
                    // Filter the drained region outside the queue lock;
                    // filtered-out messages were consumed. If the whole
                    // batch dies, go back to waiting.
                    drop(state);
                    let kept = match self.filter.get() {
                        None => taken,
                        Some(filter) => {
                            let start = out.len() - taken;
                            let mut i = start;
                            while i < out.len() {
                                if filter(&out[i]) {
                                    i += 1;
                                } else {
                                    out.remove(i);
                                }
                            }
                            out.len() - start
                        }
                    };
                    if kept > 0 {
                        return kept;
                    }
                    continue 'outer;
                }
                if self.closed.load(Ordering::Acquire) {
                    return 0;
                }
                match self.sched.get() {
                    None => {
                        state.waiters += 1;
                        self.ready.wait(&mut state);
                        state.waiters -= 1;
                    }
                    Some(scheduler) => {
                        let scheduler = Arc::clone(scheduler);
                        drop(state);
                        scheduler.park(None);
                        break;
                    }
                }
            }
        }
    }

    /// Parks the calling thread while the mailbox is paused (and not
    /// closed). Workers call this between the messages of a drained batch
    /// so a pause freezes the node at the next message boundary — the same
    /// in-flight window as unbatched delivery — instead of letting up to a
    /// whole batch of already-drained messages keep processing. The
    /// fast-path cost when not paused is one atomic load.
    pub fn pause_point(&self) {
        if self.gated() {
            self.pause.block_while_paused(&self.closed, &self.crashed);
        }
    }

    /// `true` while workers must not drain the queues: paused or crashed,
    /// unless the mailbox is closed (close overrides both so shutdown can
    /// never deadlock on a gated node).
    fn gated(&self) -> bool {
        (self.pause.is_paused() || self.crashed.load(Ordering::Acquire))
            && !self.closed.load(Ordering::Acquire)
    }

    /// Pops a message if one is immediately available (and passes the
    /// delivery filter; filtered-out messages are consumed and skipped).
    pub fn try_pop(&self) -> Option<M> {
        loop {
            let msg = self.state.lock().pop_highest()?;
            if self.passes_filter(&msg) {
                return Some(msg);
            }
        }
    }

    /// Closes the mailbox: subsequent pushes are rejected and pops return
    /// `None` once the queues drain. Wakes every parked worker, including
    /// workers parked on a pause gate.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        // Taking (and releasing) the queue mutex orders the flag store
        // before the notification for any worker that checked the flag
        // under the lock and is about to wait.
        drop(self.state.lock());
        self.ready.notify_all();
        self.pause.wake_all();
        self.sched.wake();
    }

    /// `true` once [`Mailbox::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Number of currently queued messages across all classes.
    pub fn len(&self) -> usize {
        self.state.lock().queues.iter().map(|q| q.len()).sum()
    }

    /// `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of threads currently parked on the ready queue (test hook).
    #[cfg(test)]
    fn parked_poppers(&self) -> usize {
        self.state.lock().waiters
    }

    /// Coherent snapshot of the mailbox traffic counters (taken under the
    /// queue mutex, so per class `dequeued <= enqueued` always holds) with
    /// the queue-depth gauges of the same instant — by construction
    /// `queued[i] == enqueued[i] - dequeued[i]`, which is what closes the
    /// books on window diffs (see [`MailboxStats::conserves`]).
    pub fn stats(&self) -> MailboxStats {
        let state = self.state.lock();
        let mut queued = [0u64; 3];
        for (gauge, queue) in queued.iter_mut().zip(state.queues.iter()) {
            *gauge = queue.len() as u64;
        }
        MailboxStats {
            enqueued: state.enqueued,
            dequeued: state.dequeued,
            queued,
            enqueue_ops: state.enqueue_ops,
            dequeue_ops: state.dequeue_ops,
            local_delivered: 0,
            per_kind: [0; MESSAGE_KIND_SLOTS],
        }
    }
}

impl<M: Send> Default for Mailbox<M> {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl<M> std::fmt::Debug for Mailbox<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox")
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .field("crashed", &self.crashed.load(Ordering::Relaxed))
            .field("paused", &self.pause.is_paused())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Polls `cond` until it holds or a generous deadline elapses; returns
    /// whether it held. Tests synchronize on observable state (parked-waiter
    /// counts, queue lengths) under a deadline instead of sleeping fixed
    /// durations and hoping the other thread got there.
    fn eventually(cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mb = Mailbox::new();
        mb.push(1, Priority::Normal);
        mb.push(2, Priority::Normal);
        mb.push(3, Priority::Normal);
        assert_eq!(mb.pop(), Some(1));
        assert_eq!(mb.pop(), Some(2));
        assert_eq!(mb.pop(), Some(3));
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let mb = Mailbox::new();
        mb.push("normal", Priority::Normal);
        mb.push("low", Priority::Low);
        mb.push("remove", Priority::High);
        assert_eq!(mb.pop(), Some("remove"));
        assert_eq!(mb.pop(), Some("normal"));
        assert_eq!(mb.pop(), Some("low"));
    }

    #[test]
    fn close_rejects_pushes_but_drains_queued_messages() {
        let mb = Mailbox::new();
        mb.push(1, Priority::Low);
        mb.close();
        assert!(mb.is_closed());
        assert!(!mb.push(2, Priority::High));
        assert!(!mb.push_batch([3, 4], Priority::High));
        assert_eq!(mb.pop(), Some(1));
        assert_eq!(mb.pop(), None);
    }

    #[test]
    fn try_pop_returns_none_when_empty() {
        let mb: Mailbox<u8> = Mailbox::new();
        assert_eq!(mb.try_pop(), None);
        assert!(mb.is_empty());
    }

    #[test]
    fn stats_track_traffic_per_class() {
        let mb = Mailbox::new();
        mb.push(1, Priority::High);
        mb.push(2, Priority::Normal);
        mb.push(3, Priority::Normal);
        mb.pop();
        let stats = mb.stats();
        assert_eq!(stats.enqueued, [1, 2, 0]);
        assert_eq!(stats.total_enqueued(), 3);
        assert_eq!(stats.total_dequeued(), 1);
        assert_eq!(stats.queued, [0, 2, 0], "gauge matches enqueued-dequeued");
        assert_eq!(stats.total_queued(), 2);
        assert_eq!(stats.enqueue_ops, 3);
        assert_eq!(stats.dequeue_ops, 1);
        assert!(stats.is_coherent());
    }

    #[test]
    fn snapshots_conserve_messages_across_a_backlog_draining_window() {
        let mb = Mailbox::new();
        // Backlog before the window: 2 messages queued.
        mb.push(1, Priority::Normal);
        mb.push(2, Priority::Normal);
        let before = mb.stats();
        assert_eq!(before.queued, [0, 2, 0]);
        // Window: one new enqueue, three dequeues (the backlog drains).
        mb.push(3, Priority::Normal);
        mb.pop();
        mb.pop();
        mb.pop();
        let after = mb.stats();
        let window = after.diff(&before);
        assert_eq!(window.enqueued, [0, 1, 0]);
        assert_eq!(
            window.dequeued,
            [0, 3, 0],
            "window diffs legitimately dequeue more than they enqueue"
        );
        assert!(
            MailboxStats::conserves(&before, &after),
            "the queued gauges must balance the window's books"
        );
    }

    #[test]
    fn push_batch_counts_one_enqueue_op() {
        let mb = Mailbox::new();
        assert!(mb.push_batch([1, 2, 3], Priority::Normal));
        assert!(mb.push_batch(std::iter::empty::<u8>(), Priority::High));
        let stats = mb.stats();
        assert_eq!(stats.total_enqueued(), 3);
        assert_eq!(stats.enqueue_ops, 1, "empty batches are not counted");
        let mut out = Vec::new();
        assert_eq!(mb.pop_batch(8, &mut out), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(mb.stats().dequeue_ops, 1);
        assert!((mb.stats().messages_per_wakeup() - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn pop_batch_never_mixes_priority_classes() {
        let mb = Mailbox::new();
        mb.push_batch([10, 11], Priority::Normal);
        mb.push_batch([1, 2, 3], Priority::High);
        let mut out = Vec::new();
        assert_eq!(mb.pop_batch(8, &mut out), 3, "high class drains first");
        assert_eq!(out, vec![1, 2, 3]);
        out.clear();
        assert_eq!(mb.pop_batch(8, &mut out), 2);
        assert_eq!(out, vec![10, 11]);
    }

    #[test]
    fn pop_batch_respects_the_cap() {
        let mb = Mailbox::new();
        mb.push_batch(0..10, Priority::Normal);
        let mut out = Vec::new();
        assert_eq!(mb.pop_batch(4, &mut out), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(mb.len(), 6);
    }

    #[test]
    fn pause_point_parks_until_resume_and_never_blocks_when_closed() {
        let mb: Arc<Mailbox<u8>> = Arc::new(Mailbox::new());
        // Not paused: returns immediately.
        mb.pause_point();
        let pause = mb.pause_control();
        pause.pause();
        let parked = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                mb.pause_point();
                42u8
            })
        };
        // The worker is parked on the gate, not spinning; resume releases it.
        assert!(eventually(|| pause.parked() == 1));
        assert!(!parked.is_finished());
        pause.resume();
        assert_eq!(parked.join().unwrap(), 42);
        // A close overrides an active pause so shutdown drains proceed.
        pause.pause();
        mb.close();
        mb.pause_point();
    }

    #[test]
    fn pop_blocks_until_a_message_arrives() {
        let mb = Arc::new(Mailbox::new());
        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        // Push only once the popper is demonstrably parked on the ready
        // queue, so the blocking path is the one exercised.
        assert!(eventually(|| mb.parked_poppers() == 1));
        mb.push(42, Priority::Normal);
        assert_eq!(handle.join().unwrap(), Some(42));
    }

    #[test]
    fn paused_mailbox_stops_handing_out_messages_until_resumed() {
        let mb = Arc::new(Mailbox::new());
        let pause = mb.pause_control();
        pause.pause();
        assert!(pause.is_paused());
        assert!(mb.push(7, Priority::Normal), "pushes proceed while paused");

        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        // The popper must end up stuck behind the gate, not pop the message.
        assert!(eventually(|| pause.parked() == 1));
        assert_eq!(mb.len(), 1, "message must still be queued while paused");
        pause.resume();
        assert_eq!(handle.join().unwrap(), Some(7));
    }

    #[test]
    fn pause_hit_while_parked_on_the_ready_queue_still_gates() {
        let mb: Arc<Mailbox<u8>> = Arc::new(Mailbox::new());
        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        // Let the popper park on the empty mailbox, then pause and push.
        assert!(eventually(|| mb.parked_poppers() == 1));
        mb.pause_control().pause();
        mb.push(9, Priority::Normal);
        // The push wakes the popper, which must migrate to the pause gate
        // instead of popping the now-gated message.
        let pause = mb.pause_control();
        assert!(eventually(|| pause.parked() == 1));
        assert_eq!(mb.len(), 1, "paused mailbox must hold the message");
        pause.resume();
        assert_eq!(handle.join().unwrap(), Some(9));
    }

    #[test]
    fn close_overrides_pause_and_drains() {
        let mb = Mailbox::new();
        mb.pause_control().pause();
        mb.push(1, Priority::High);
        mb.close();
        assert_eq!(mb.pop(), Some(1), "closed mailboxes drain even if paused");
        assert_eq!(mb.pop(), None);
    }

    #[test]
    fn close_unblocks_a_worker_parked_on_the_pause_gate() {
        let mb: Arc<Mailbox<u8>> = Arc::new(Mailbox::new());
        mb.pause_control().pause();
        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        let pause = mb.pause_control();
        assert!(eventually(|| pause.parked() == 1));
        mb.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn pop_unblocks_on_close() {
        let mb: Arc<Mailbox<u8>> = Arc::new(Mailbox::new());
        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        // Close only once the popper is parked, so the close-wakeup path is
        // the one exercised.
        assert!(eventually(|| mb.parked_poppers() == 1));
        mb.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn crash_purges_drops_pushes_and_restart_recovers() {
        let mb = Mailbox::new();
        mb.push(1, Priority::Normal);
        mb.push(2, Priority::High);
        let before = mb.stats();
        mb.crash();
        assert!(mb.is_crashed());
        assert_eq!(mb.len(), 0, "a crash destroys queued messages");
        // Pushes during the crash window vanish without an error: the wire
        // cannot tell a crashed node from a slow one.
        assert!(mb.push(3, Priority::Normal));
        assert!(mb.push_batch([4, 5], Priority::Low));
        assert_eq!(mb.len(), 0);
        assert_eq!(mb.try_pop(), None);
        let during = mb.stats();
        assert!(
            MailboxStats::conserves(&before, &during),
            "purged messages count as dequeued so the books stay balanced"
        );
        mb.restart();
        assert!(!mb.is_crashed());
        assert!(mb.push(6, Priority::Normal));
        assert_eq!(mb.pop(), Some(6));
    }

    #[test]
    fn crashed_mailbox_gates_workers_until_restart() {
        let mb: Arc<Mailbox<u8>> = Arc::new(Mailbox::new());
        mb.crash();
        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        let pause = mb.pause_control();
        assert!(eventually(|| pause.parked() == 1));
        mb.restart();
        mb.push(11, Priority::Normal);
        assert_eq!(handle.join().unwrap(), Some(11));
    }

    #[test]
    fn close_overrides_a_crash() {
        let mb: Arc<Mailbox<u8>> = Arc::new(Mailbox::new());
        mb.crash();
        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        let pause = mb.pause_control();
        assert!(eventually(|| pause.parked() == 1));
        mb.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn stats_merge_and_diff_cover_op_counters() {
        let mut a = MailboxStats {
            enqueued: [4, 0, 0],
            dequeued: [2, 0, 0],
            queued: [2, 0, 0],
            enqueue_ops: 2,
            dequeue_ops: 1,
            local_delivered: 3,
            per_kind: [5, 0, 0, 0, 0, 0, 0, 0],
        };
        let b = MailboxStats {
            enqueued: [1, 1, 0],
            dequeued: [1, 1, 0],
            queued: [0, 0, 0],
            enqueue_ops: 2,
            dequeue_ops: 2,
            local_delivered: 1,
            per_kind: [1, 1, 0, 0, 0, 0, 0, 0],
        };
        a.merge(&b);
        assert_eq!(a.enqueue_ops, 4);
        assert_eq!(a.local_delivered, 4);
        assert_eq!(a.queued, [2, 0, 0]);
        assert_eq!(a.per_kind[0], 6);
        let d = a.diff(&b);
        assert_eq!(d.enqueued, [4, 0, 0]);
        assert_eq!(d.enqueue_ops, 2);
        assert_eq!(d.local_delivered, 3);
        assert_eq!(d.queued, a.queued, "diffs keep the later snapshot's gauge");
        assert_eq!(d.per_kind[0], 5);
        assert_eq!(d.per_kind[1], 0);
        assert!(a.is_coherent());
        let incoherent = MailboxStats {
            enqueued: [0; 3],
            dequeued: [1, 0, 0],
            ..MailboxStats::default()
        };
        assert!(!incoherent.is_coherent());
    }
}
