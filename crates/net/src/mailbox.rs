//! Priority mailboxes: one queue per message class, drained by worker threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// A pause gate shared between a [`Mailbox`] and a fault injector.
///
/// While paused, [`Mailbox::pop`] stops handing out messages — the node's
/// workers idle and traffic accumulates in the queues, which models a node
/// that is alive (messages addressed to it are not lost) but not making
/// progress (GC pause, CPU starvation, VM migration). Pausing never loses
/// messages: once [`PauseControl::resume`] is called the workers drain the
/// backlog in priority order. Closing the mailbox overrides the pause so
/// shutdown can never deadlock on a paused node.
#[derive(Debug, Default)]
pub struct PauseControl {
    paused: AtomicBool,
}

impl PauseControl {
    /// Creates a control in the running (not paused) state.
    pub fn new() -> Self {
        PauseControl::default()
    }

    /// Stops the associated mailbox from handing out messages.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Release);
    }

    /// Lets the associated mailbox hand out messages again.
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Release);
    }

    /// `true` while paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Acquire)
    }
}

/// Priority class of a protocol message.
///
/// The SSS implementation assigns "priorities to different messages and
/// avoid\[s\] protocol slow down in some critical steps due to network
/// congestion caused by lower priority messages (e.g., the Remove message
/// has a very high priority because it enables external commits)" (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Critical protocol steps: `Remove`, `Decide`, commit acknowledgements.
    High,
    /// Regular protocol traffic: reads, prepares, votes.
    Normal,
    /// Background traffic: garbage collection, statistics.
    Low,
}

impl Priority {
    /// All priorities, highest first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Counters describing the traffic that went through a [`Mailbox`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MailboxStats {
    /// Messages enqueued per priority class (high, normal, low).
    pub enqueued: [u64; 3],
    /// Messages dequeued per priority class (high, normal, low).
    pub dequeued: [u64; 3],
}

impl MailboxStats {
    /// Total number of messages enqueued across all classes.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.iter().sum()
    }

    /// Total number of messages dequeued across all classes.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.iter().sum()
    }

    /// Entry-wise sum with `other`, used to aggregate per-node mailboxes
    /// into a cluster total.
    pub fn merge(&mut self, other: &MailboxStats) {
        for i in 0..3 {
            self.enqueued[i] += other.enqueued[i];
            self.dequeued[i] += other.dequeued[i];
        }
    }

    /// Counter difference `self - earlier` (entry-wise, saturating). The
    /// counters are monotonic and never reset; harnesses snapshot them at
    /// the start and end of a measured window and diff so per-window
    /// numbers exclude warm-up traffic.
    pub fn diff(&self, earlier: &MailboxStats) -> MailboxStats {
        let mut out = MailboxStats::default();
        for i in 0..3 {
            out.enqueued[i] = self.enqueued[i].saturating_sub(earlier.enqueued[i]);
            out.dequeued[i] = self.dequeued[i].saturating_sub(earlier.dequeued[i]);
        }
        out
    }
}

/// A multi-queue mailbox owned by one logical node.
///
/// Messages are pushed with a [`Priority`]; worker threads pop messages with
/// a strict priority bias (high before normal before low). The mailbox can be
/// closed, after which pops drain remaining messages and then return `None`.
#[derive(Debug)]
pub struct Mailbox<M> {
    senders: [Sender<M>; 3],
    receivers: [Receiver<M>; 3],
    closed: AtomicBool,
    pause: Arc<PauseControl>,
    enqueued: [AtomicU64; 3],
    dequeued: [AtomicU64; 3],
}

impl<M: Send> Mailbox<M> {
    /// Creates an empty, open mailbox.
    pub fn new() -> Self {
        let (hs, hr) = unbounded();
        let (ns, nr) = unbounded();
        let (ls, lr) = unbounded();
        Mailbox {
            senders: [hs, ns, ls],
            receivers: [hr, nr, lr],
            closed: AtomicBool::new(false),
            pause: Arc::new(PauseControl::new()),
            enqueued: Default::default(),
            dequeued: Default::default(),
        }
    }

    /// The pause gate of this mailbox, shared with fault injectors. Pushes
    /// are unaffected by a pause; only [`Mailbox::pop`] stops handing out
    /// messages (the node keeps receiving but stops processing).
    pub fn pause_control(&self) -> Arc<PauseControl> {
        Arc::clone(&self.pause)
    }

    /// Enqueues `msg` in the queue of class `priority`.
    ///
    /// Returns `false` if the mailbox has been closed (the message is
    /// dropped), `true` otherwise.
    pub fn push(&self, msg: M, priority: Priority) -> bool {
        if self.closed.load(Ordering::Acquire) {
            return false;
        }
        let idx = priority.index();
        // An unbounded channel only errors when all receivers are gone,
        // which we treat the same as a closed mailbox.
        if self.senders[idx].send(msg).is_ok() {
            self.enqueued[idx].fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Pops the next message, honoring the priority bias.
    ///
    /// Blocks until a message arrives or the mailbox is closed *and* empty,
    /// in which case `None` is returned.
    pub fn pop(&self) -> Option<M> {
        loop {
            // A paused node stops draining its queues (fault injection);
            // the close flag overrides the pause so shutdown always drains.
            if self.pause.is_paused() && !self.closed.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            // Strict bias: always drain higher classes first.
            for p in Priority::ALL {
                if let Ok(msg) = self.receivers[p.index()].try_recv() {
                    self.dequeued[p.index()].fetch_add(1, Ordering::Relaxed);
                    return Some(msg);
                }
            }
            if self.closed.load(Ordering::Acquire) {
                // Re-check emptiness after observing the close flag so that
                // messages pushed before the close are still delivered.
                for p in Priority::ALL {
                    if let Ok(msg) = self.receivers[p.index()].try_recv() {
                        self.dequeued[p.index()].fetch_add(1, Ordering::Relaxed);
                        return Some(msg);
                    }
                }
                return None;
            }
            // Nothing ready: wait on the high-priority queue with a short
            // timeout so that lower classes and the close flag are re-polled.
            match self.receivers[0].recv_timeout(Duration::from_micros(200)) {
                Ok(msg) => {
                    self.dequeued[0].fetch_add(1, Ordering::Relaxed);
                    return Some(msg);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => continue,
            }
        }
    }

    /// Pops a message if one is immediately available.
    pub fn try_pop(&self) -> Option<M> {
        for p in Priority::ALL {
            if let Ok(msg) = self.receivers[p.index()].try_recv() {
                self.dequeued[p.index()].fetch_add(1, Ordering::Relaxed);
                return Some(msg);
            }
        }
        None
    }

    /// Closes the mailbox: subsequent pushes are rejected and pops return
    /// `None` once the queues drain.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// `true` once [`Mailbox::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Approximate number of queued messages across all classes.
    pub fn len(&self) -> usize {
        self.receivers.iter().map(|r| r.len()).sum()
    }

    /// `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the mailbox traffic counters.
    pub fn stats(&self) -> MailboxStats {
        MailboxStats {
            enqueued: [
                self.enqueued[0].load(Ordering::Relaxed),
                self.enqueued[1].load(Ordering::Relaxed),
                self.enqueued[2].load(Ordering::Relaxed),
            ],
            dequeued: [
                self.dequeued[0].load(Ordering::Relaxed),
                self.dequeued[1].load(Ordering::Relaxed),
                self.dequeued[2].load(Ordering::Relaxed),
            ],
        }
    }
}

impl<M: Send> Default for Mailbox<M> {
    fn default() -> Self {
        Mailbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_priority_class() {
        let mb = Mailbox::new();
        mb.push(1, Priority::Normal);
        mb.push(2, Priority::Normal);
        mb.push(3, Priority::Normal);
        assert_eq!(mb.pop(), Some(1));
        assert_eq!(mb.pop(), Some(2));
        assert_eq!(mb.pop(), Some(3));
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let mb = Mailbox::new();
        mb.push("normal", Priority::Normal);
        mb.push("low", Priority::Low);
        mb.push("remove", Priority::High);
        assert_eq!(mb.pop(), Some("remove"));
        assert_eq!(mb.pop(), Some("normal"));
        assert_eq!(mb.pop(), Some("low"));
    }

    #[test]
    fn close_rejects_pushes_but_drains_queued_messages() {
        let mb = Mailbox::new();
        mb.push(1, Priority::Low);
        mb.close();
        assert!(mb.is_closed());
        assert!(!mb.push(2, Priority::High));
        assert_eq!(mb.pop(), Some(1));
        assert_eq!(mb.pop(), None);
    }

    #[test]
    fn try_pop_returns_none_when_empty() {
        let mb: Mailbox<u8> = Mailbox::new();
        assert_eq!(mb.try_pop(), None);
        assert!(mb.is_empty());
    }

    #[test]
    fn stats_track_traffic_per_class() {
        let mb = Mailbox::new();
        mb.push(1, Priority::High);
        mb.push(2, Priority::Normal);
        mb.push(3, Priority::Normal);
        mb.pop();
        let stats = mb.stats();
        assert_eq!(stats.enqueued, [1, 2, 0]);
        assert_eq!(stats.total_enqueued(), 3);
        assert_eq!(stats.total_dequeued(), 1);
    }

    #[test]
    fn pop_blocks_until_a_message_arrives() {
        let mb = Arc::new(Mailbox::new());
        let producer = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            producer.push(42, Priority::Normal);
        });
        assert_eq!(mb.pop(), Some(42));
        handle.join().unwrap();
    }

    #[test]
    fn paused_mailbox_stops_handing_out_messages_until_resumed() {
        let mb = Arc::new(Mailbox::new());
        let pause = mb.pause_control();
        pause.pause();
        assert!(pause.is_paused());
        assert!(mb.push(7, Priority::Normal), "pushes proceed while paused");

        let popper = Arc::clone(&mb);
        let handle = std::thread::spawn(move || popper.pop());
        // The popper must be stuck behind the gate; give it a chance to
        // (incorrectly) pop before resuming.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(mb.len(), 1, "message must still be queued while paused");
        pause.resume();
        assert_eq!(handle.join().unwrap(), Some(7));
    }

    #[test]
    fn close_overrides_pause_and_drains() {
        let mb = Mailbox::new();
        mb.pause_control().pause();
        mb.push(1, Priority::High);
        mb.close();
        assert_eq!(mb.pop(), Some(1), "closed mailboxes drain even if paused");
        assert_eq!(mb.pop(), None);
    }

    #[test]
    fn pop_unblocks_on_close() {
        let mb: Arc<Mailbox<u8>> = Arc::new(Mailbox::new());
        let closer = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            closer.close();
        });
        assert_eq!(mb.pop(), None);
        handle.join().unwrap();
    }
}
