//! Worker pools that drive a node's message handlers.

use std::sync::Arc;

use sss_vclock::NodeId;

use crate::mailbox::{Mailbox, DEFAULT_DELIVERY_BATCH};
use crate::transport::Envelope;

/// A node's message handler.
///
/// Handlers must not block indefinitely: protocol waits (e.g. the visibility
/// wait of Algorithm 6 line 5 or the pre-commit wait of Algorithm 4) are
/// implemented as *deferred work* re-evaluated on later state changes, so a
/// handler invocation always terminates promptly. Bounded waits (the 2PC
/// lock-acquisition timeout) are allowed.
pub trait NodeService<M>: Send + Sync + 'static {
    /// Processes one incoming envelope.
    fn handle(&self, envelope: Envelope<M>);
}

impl<M, F> NodeService<M> for F
where
    F: Fn(Envelope<M>) + Send + Sync + 'static,
{
    fn handle(&self, envelope: Envelope<M>) {
        self(envelope)
    }
}

/// A pool of worker threads draining one node's mailbox.
///
/// The runtime owns a shutdown guard for its mailbox: dropping it closes
/// the mailbox and joins every worker, so a harness abandoned mid-scenario
/// (e.g. on a stuck-run abort) can never deadlock on un-joined workers.
/// Explicitly calling [`NodeRuntime::join`] does the same and is idempotent
/// with the drop path.
pub struct NodeRuntime {
    node: NodeId,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Closes the mailbox the workers drain; erased so the runtime stays
    /// non-generic over the message type.
    close_mailbox: Arc<dyn Fn() + Send + Sync>,
}

impl std::fmt::Debug for NodeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRuntime")
            .field("node", &self.node)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl NodeRuntime {
    /// Spawns `workers` threads that pop envelopes from `mailbox` and feed
    /// them to `service` until the mailbox is closed and drained, draining
    /// up to [`DEFAULT_DELIVERY_BATCH`] messages per wakeup.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a worker thread cannot be spawned.
    pub fn spawn<M, S>(
        node: NodeId,
        mailbox: Arc<Mailbox<Envelope<M>>>,
        service: Arc<S>,
        workers: usize,
    ) -> Self
    where
        M: Send + 'static,
        S: NodeService<M>,
    {
        Self::spawn_batched(node, mailbox, service, workers, DEFAULT_DELIVERY_BATCH)
    }

    /// Like [`NodeRuntime::spawn`], but each worker drains up to `batch`
    /// messages of the same priority class per mailbox wakeup and processes
    /// the whole batch before re-parking. `batch` is clamped to at least 1;
    /// batch size 1 reproduces one-message-per-wakeup delivery exactly.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or a worker thread cannot be spawned.
    pub fn spawn_batched<M, S>(
        node: NodeId,
        mailbox: Arc<Mailbox<Envelope<M>>>,
        service: Arc<S>,
        workers: usize,
        batch: usize,
    ) -> Self
    where
        M: Send + 'static,
        S: NodeService<M>,
    {
        assert!(workers > 0, "a node needs at least one worker thread");
        let batch = batch.max(1);
        // Under a simulation scheduler (attached to the mailbox by the
        // transport) workers become daemon tasks of the simulator: same
        // loop, but scheduled cooperatively and idle-parked at quiescence.
        let scheduler = mailbox.scheduler();
        let handles = (0..workers)
            .map(|w| {
                let mailbox = Arc::clone(&mailbox);
                let service = Arc::clone(&service);
                let name = format!("sss-node-{}-w{}", node.index(), w);
                let body = move || {
                    let mut drained = Vec::with_capacity(batch);
                    while mailbox.pop_batch(batch, &mut drained) > 0 {
                        for envelope in drained.drain(..) {
                            // A pause that lands mid-batch must freeze
                            // the node at the next message boundary,
                            // exactly as unbatched delivery would.
                            mailbox.pause_point();
                            service.handle(envelope);
                        }
                    }
                };
                match &scheduler {
                    Some(scheduler) => scheduler.spawn_task(name, true, Box::new(body)),
                    None => std::thread::Builder::new()
                        .name(name)
                        .spawn(body)
                        .expect("failed to spawn node worker"),
                }
            })
            .collect();
        let close_mailbox = Arc::new(move || mailbox.close());
        NodeRuntime {
            node,
            workers: handles,
            close_mailbox,
        }
    }

    /// The node this runtime serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Closes the mailbox (idempotent) and waits for every worker to exit,
    /// which happens once the remaining queued messages have been drained.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        // Closing first guarantees the joins below terminate: workers exit
        // as soon as the closed mailbox runs dry (a pause gate is overridden
        // by the close).
        (self.close_mailbox)();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::Priority;
    use crate::transport::{ChannelTransport, Transport, TransportConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_process_messages_and_exit_on_close() {
        let transport: ChannelTransport<u64> = ChannelTransport::new(TransportConfig::new(1));
        let counter = Arc::new(AtomicUsize::new(0));
        let service = {
            let counter = Arc::clone(&counter);
            Arc::new(move |env: Envelope<u64>| {
                counter.fetch_add(env.payload as usize, Ordering::SeqCst);
            })
        };
        let runtime = NodeRuntime::spawn(NodeId(0), transport.mailbox(NodeId(0)), service, 3);
        assert_eq!(runtime.worker_count(), 3);
        assert_eq!(runtime.node(), NodeId(0));
        for _ in 0..100 {
            transport
                .send(NodeId(0), NodeId(0), 2, Priority::Normal)
                .unwrap();
        }
        transport.shutdown();
        runtime.join();
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn dropping_the_runtime_closes_the_mailbox_and_joins_workers() {
        let transport: ChannelTransport<u64> = ChannelTransport::new(TransportConfig::new(1));
        let counter = Arc::new(AtomicUsize::new(0));
        let service = {
            let counter = Arc::clone(&counter);
            Arc::new(move |_env: Envelope<u64>| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
        };
        let runtime = NodeRuntime::spawn(NodeId(0), transport.mailbox(NodeId(0)), service, 2);
        for _ in 0..10 {
            transport
                .send(NodeId(0), NodeId(0), 1, Priority::Normal)
                .unwrap();
        }
        // No transport shutdown: the drop alone must terminate the workers
        // (after draining what was already queued).
        drop(runtime);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert!(transport.mailbox(NodeId(0)).is_closed());
    }

    #[test]
    fn join_after_drop_path_is_idempotent_with_transport_shutdown() {
        let transport: ChannelTransport<u64> = ChannelTransport::new(TransportConfig::new(1));
        let service = Arc::new(|_env: Envelope<u64>| {});
        let runtime = NodeRuntime::spawn(NodeId(0), transport.mailbox(NodeId(0)), service, 1);
        transport.shutdown();
        transport.shutdown();
        runtime.join();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let transport: ChannelTransport<u64> = ChannelTransport::new(TransportConfig::new(1));
        let service = Arc::new(|_env: Envelope<u64>| {});
        let _ = NodeRuntime::spawn(NodeId(0), transport.mailbox(NodeId(0)), service, 0);
    }
}
