//! In-process asynchronous message-passing substrate.
//!
//! The SSS paper evaluates its protocol on a cluster whose nodes communicate
//! through *reliable asynchronous channels* (paper §II) and whose
//! implementation uses an "optimized network component where multiple network
//! queues, each for a different message type, are deployed" so that
//! high-priority protocol messages (e.g. `Remove`) are never stuck behind
//! bulk traffic (paper §V).
//!
//! This crate reproduces that substrate for an in-process cluster:
//!
//! * every logical node owns a [`Mailbox`] with one queue per
//!   [`Priority`] class and a pool of worker threads draining it,
//! * senders interact only through the [`Transport`] trait, so protocol
//!   code never touches another node's state directly,
//! * an optional [`LatencyModel`] delays deliveries to reproduce the
//!   asynchrony (and reordering across priority classes) of a real network.
//!
//! The substrate is engine-agnostic: SSS, the 2PC baseline, Walter and
//! ROCOCO all run on it unchanged.
//!
//! # Batched delivery
//!
//! Delivery is batched at both ends of a mailbox: senders can hand a
//! per-destination batch to [`Transport::send_batch`] (one enqueue and one
//! wakeup round per destination) and workers drain up to a configurable
//! number of same-priority messages per wakeup
//! ([`Mailbox::pop_batch`], [`NodeRuntime::spawn_batched`]). Batching is
//! invisible to the fault layer: interposers are consulted per message, so
//! a batch faults exactly like the equivalent sequence of single sends.
//! Self-addressed messages can skip the queues entirely via the transport's
//! local delivery fast path ([`ChannelTransport::set_local_dispatch`]).

#![deny(missing_docs)]

mod latency;
mod mailbox;
mod reply;
mod runtime;
mod transport;

pub use latency::LatencyModel;
pub use mailbox::{
    Mailbox, MailboxStats, PauseControl, Priority, DEFAULT_DELIVERY_BATCH, MESSAGE_KIND_SLOTS,
};
pub use reply::{reply_channel, ReplyReceiver, ReplySender, ReplyTryRecvError};
pub use runtime::{NodeRuntime, NodeService};
pub use transport::{
    ChannelTransport, Envelope, FaultInterposer, LocalDispatch, ReliabilityConfig,
    ReliabilityStats, SendPlan, Transport, TransportConfig, TransportError, TransportExt,
};

pub use sss_vclock::NodeId;
