//! One-shot / first-of-many reply channels.
//!
//! SSS read operations are sent "to all nodes that replicate the requested
//! key", and the transaction waits "for the fastest to answer" (paper
//! §III-C). The reply channel therefore supports *multiple* producers; the
//! consumer keeps the first reply and ignores the rest.

use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use sss_vclock::runtime;

/// Error returned by [`ReplyReceiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyTryRecvError {
    /// No reply has arrived yet.
    Empty,
    /// All senders were dropped without replying.
    Disconnected,
}

impl std::fmt::Display for ReplyTryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplyTryRecvError::Empty => write!(f, "no reply available yet"),
            ReplyTryRecvError::Disconnected => write!(f, "all repliers disconnected"),
        }
    }
}

impl std::error::Error for ReplyTryRecvError {}

/// Sending half of a reply channel. Cloneable so that a request can be
/// fanned out to every replica of a key.
#[derive(Debug, Clone)]
pub struct ReplySender<T> {
    inner: Sender<T>,
}

impl<T> ReplySender<T> {
    /// Delivers a reply. Returns `false` if the requester already went away
    /// or the channel is full (a faster replica already answered and the
    /// buffer is exhausted) — both are benign for the protocol.
    pub fn send(&self, value: T) -> bool {
        let delivered = self.inner.try_send(value).is_ok();
        if delivered {
            if let Some(scheduler) = runtime::current() {
                scheduler.wake();
            }
        }
        delivered
    }
}

impl<T> Drop for ReplySender<T> {
    fn drop(&mut self) {
        // Under simulation a receiver may be parked waiting for either a
        // reply or disconnection; dropping the last sender is the
        // disconnect signal, so every sender drop wakes parked tasks.
        if let Some(scheduler) = runtime::current() {
            scheduler.wake();
        }
    }
}

/// Receiving half of a reply channel.
#[derive(Debug)]
pub struct ReplyReceiver<T> {
    inner: Receiver<T>,
}

impl<T> ReplyReceiver<T> {
    /// Waits for the first reply, up to `timeout`.
    ///
    /// Returns `None` on timeout or if every sender was dropped without
    /// replying (e.g. the target node was shut down).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        if let Some(scheduler) = runtime::current() {
            // Simulated: poll-and-park against the virtual clock instead of
            // blocking the OS thread. Senders and sender drops wake us.
            let deadline = scheduler.now() + timeout;
            loop {
                match self.inner.try_recv() {
                    Ok(v) => return Some(v),
                    Err(TryRecvError::Disconnected) => return None,
                    Err(TryRecvError::Empty) => {}
                }
                if scheduler.now() >= deadline {
                    return None;
                }
                scheduler.park(Some(deadline));
            }
        }
        match self.inner.recv_timeout(timeout) {
            Ok(v) => Some(v),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Waits for the first reply without a timeout. Returns `None` if all
    /// senders disconnected without replying.
    pub fn recv(&self) -> Option<T> {
        if let Some(scheduler) = runtime::current() {
            loop {
                match self.inner.try_recv() {
                    Ok(v) => return Some(v),
                    Err(TryRecvError::Disconnected) => return None,
                    Err(TryRecvError::Empty) => scheduler.park(None),
                }
            }
        }
        self.inner.recv().ok()
    }

    /// Non-blocking poll for a reply.
    pub fn try_recv(&self) -> Result<T, ReplyTryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            TryRecvError::Empty => ReplyTryRecvError::Empty,
            TryRecvError::Disconnected => ReplyTryRecvError::Disconnected,
        })
    }
}

/// Creates a reply channel able to buffer up to `capacity` replies.
///
/// `capacity` is typically the number of replicas contacted; extra replies
/// beyond the first are simply never read.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn reply_channel<T>(capacity: usize) -> (ReplySender<T>, ReplyReceiver<T>) {
    assert!(capacity > 0, "reply channel capacity must be non-zero");
    let (tx, rx) = bounded(capacity);
    (ReplySender { inner: tx }, ReplyReceiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reply_wins() {
        let (tx, rx) = reply_channel(3);
        let tx2 = tx.clone();
        assert!(tx.send("fast"));
        assert!(tx2.send("slow"));
        assert_eq!(rx.recv(), Some("fast"));
    }

    #[test]
    fn timeout_when_nobody_replies() {
        let (_tx, rx) = reply_channel::<u8>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn disconnected_when_all_senders_dropped() {
        let (tx, rx) = reply_channel::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.try_recv(), Err(ReplyTryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_reports_empty_then_value() {
        let (tx, rx) = reply_channel(1);
        assert_eq!(rx.try_recv(), Err(ReplyTryRecvError::Empty));
        tx.send(7u8);
        assert_eq!(rx.try_recv(), Ok(7));
    }

    #[test]
    fn sends_beyond_capacity_are_dropped_silently() {
        let (tx, rx) = reply_channel(1);
        assert!(tx.send(1));
        assert!(!tx.send(2));
        assert_eq!(rx.recv(), Some(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = reply_channel::<u8>(0);
    }
}
