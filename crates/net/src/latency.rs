//! Network latency models used to inject asynchrony into message delivery.

use std::time::Duration;

use rand::Rng;

/// A simple one-way latency model: a fixed base delay plus uniformly
/// distributed jitter.
///
/// The paper's test bed delivers a message "in around 20 microseconds"
/// (paper §V); the default model reproduces that figure. Latency injection
/// is optional — the benchmark harness keeps it off by default so that
/// relative engine performance is dominated by protocol behaviour rather
/// than by sleeping threads — but tests use it to exercise message
/// reordering and asynchrony.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Minimum one-way delay applied to every message.
    pub base: Duration,
    /// Maximum additional uniformly distributed delay.
    pub jitter: Duration,
}

impl LatencyModel {
    /// A model with no delay at all (messages are delivered immediately).
    pub const ZERO: LatencyModel = LatencyModel {
        base: Duration::ZERO,
        jitter: Duration::ZERO,
    };

    /// Creates a model with the given base delay and jitter.
    pub fn new(base: Duration, jitter: Duration) -> Self {
        LatencyModel { base, jitter }
    }

    /// The cluster used in the paper: ~20µs per message, small jitter.
    pub fn cloudlab_like() -> Self {
        LatencyModel::new(Duration::from_micros(20), Duration::from_micros(10))
    }

    /// `true` when the model never delays messages.
    pub fn is_zero(&self) -> bool {
        self.base.is_zero() && self.jitter.is_zero()
    }

    /// Samples a one-way delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        let jitter_nanos = rng.gen_range(0..=self.jitter.as_nanos() as u64);
        self.base + Duration::from_nanos(jitter_nanos)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_model_never_delays() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(LatencyModel::ZERO.is_zero());
        assert_eq!(LatencyModel::ZERO.sample(&mut rng), Duration::ZERO);
    }

    #[test]
    fn samples_stay_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = LatencyModel::new(Duration::from_micros(20), Duration::from_micros(10));
        for _ in 0..1000 {
            let d = model.sample(&mut rng);
            assert!(d >= Duration::from_micros(20));
            assert!(d <= Duration::from_micros(30));
        }
    }

    #[test]
    fn cloudlab_model_matches_paper_figure() {
        let model = LatencyModel::cloudlab_like();
        assert_eq!(model.base, Duration::from_micros(20));
        assert!(!model.is_zero());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(LatencyModel::default(), LatencyModel::ZERO);
    }
}
