//! Integration tests of the chaos-scenario layer: determinism of faulted
//! runs and non-vacuousness of the post-run consistency checking.

use std::time::Duration;

use sss_consistency::{check_all, History, TxnRecord};
use sss_workload::scenario::{run_scenario, ChaosScenario};
use sss_workload::{
    EngineKind, FaultPlan, LinkFault, LinkSelector, WorkloadGenerator, WorkloadSpec,
};

fn faulted_scenario(seed: u64) -> ChaosScenario {
    let spec = WorkloadSpec::new(3)
        .clients_per_node(2)
        .total_keys(48)
        .read_only_percent(50)
        .seed(seed);
    ChaosScenario::new("determinism-probe", spec)
        .ops_per_client(40)
        .faults(
            FaultPlan::new(seed)
                .link_fault(
                    LinkFault::on(LinkSelector::All)
                        .jitter(Duration::from_micros(200))
                        .duplicate(20, Duration::from_micros(100)),
                )
                .partition([0], Duration::from_millis(3), Duration::from_millis(20))
                .pause(1, Duration::from_millis(8), Duration::from_millis(15)),
        )
}

/// Same seed + same fault plan ⇒ identical outcome summary
/// (committed/aborted counts, read-only mix, checker verdict) across runs.
#[test]
fn same_seed_and_fault_plan_reproduce_the_outcome_summary() {
    let scenario = faulted_scenario(7);
    let first = run_scenario(EngineKind::Sss, &scenario).expect("valid scenario");
    let second = run_scenario(EngineKind::Sss, &scenario).expect("valid scenario");
    assert!(first.passed(), "violations: {:?}", first.violations);
    assert_eq!(
        first.summary(),
        second.summary(),
        "scenario outcome summary must be bit-identical across replays"
    );
    assert_eq!(first.committed, scenario.expected_total());
    assert_eq!(first.read_only_aborts, 0);

    // Guard against a trivially constant summary: the read-only mix must be
    // exactly the seed-derived mix of the generator streams, computed here
    // independently of the scenario runner.
    let spec = &scenario.spec;
    let mut expected_read_only = 0u64;
    for node in 0..spec.nodes {
        for client in 0..spec.clients_per_node {
            let mut generator = WorkloadGenerator::new(spec, sss_workload::NodeId(node), client);
            for _ in 0..scenario.ops_per_client {
                if generator.next_txn().is_read_only() {
                    expected_read_only += 1;
                }
            }
        }
    }
    assert_eq!(first.committed_read_only, expected_read_only);
}

/// Mutation test: the consistency checker must reject a deliberately
/// corrupted history — a guard against a vacuously passing checker.
///
/// The corruption reverses real time for one attributed observation: a
/// reader that observed writer `W` is rewritten to have completed *before*
/// `W` started, which creates a write-read edge `W -> R` plus a real-time
/// edge `R -> W` — a cycle every external-consistency checker must find.
#[test]
fn checker_rejects_a_corrupted_scenario_history() {
    let scenario = faulted_scenario(5).ops_per_client(20);
    let outcome = run_scenario(EngineKind::Sss, &scenario).expect("valid scenario");
    assert!(outcome.passed(), "violations: {:?}", outcome.violations);
    assert_eq!(
        outcome.consistency,
        Some(Ok(())),
        "the genuine history must pass"
    );

    // Find a reader with an attributed writer present in the history.
    let history = &outcome.history;
    let (reader_id, writer_started) = history
        .read_onlys()
        .find_map(|reader| {
            reader.reads.iter().find_map(|read| {
                let writer = read.observed_writer?;
                let writer_record = history.get(writer)?;
                Some((reader.id, writer_record.started))
            })
        })
        .expect("a faulted run must contain at least one attributed read");

    let corrupted: History = history
        .transactions()
        .iter()
        .cloned()
        .map(|mut record: TxnRecord| {
            if record.id == reader_id {
                record.started = writer_started - Duration::from_millis(2);
                record.finished = writer_started - Duration::from_millis(1);
            }
            record
        })
        .collect();

    assert!(
        check_all(&corrupted).is_err(),
        "the checker accepted a history with a reversed real-time edge"
    );
}
