//! Batched message delivery must be invisible to protocol behaviour: the
//! same seeded chaos scenario produces the bit-identical outcome summary
//! whether workers drain one message per wakeup or a full batch. Batching
//! changes *when* a worker picks messages up, never what any transaction
//! observes — and the fault interposer is consulted once per message, so
//! per-link fault decisions are identical across batch sizes.

use std::time::Duration;

use sss_engine::{EngineTuning, FaultInjector, NetProfile};
use sss_workload::scenario::{run_scenario_on, ChaosScenario, ScenarioExpectations};
use sss_workload::{EngineKind, FaultPlan, LinkFault, LinkSelector, WorkloadSpec};

fn scenario(kind: EngineKind, seed: u64) -> ChaosScenario {
    let spec = WorkloadSpec::new(3)
        .clients_per_node(2)
        .total_keys(48)
        .read_only_percent(40)
        .seed(seed);
    let expect = match kind {
        EngineKind::Sss => ScenarioExpectations::sss(),
        _ => ScenarioExpectations::serializable_baseline(),
    };
    ChaosScenario::new("batch-size-probe", spec)
        .ops_per_client(30)
        .expect(expect)
        .faults(
            FaultPlan::new(seed).link_fault(
                LinkFault::on(LinkSelector::All)
                    .jitter(Duration::from_micros(150))
                    .reorder(20, Duration::from_micros(120))
                    .duplicate(15, Duration::from_micros(80)),
            ),
        )
}

fn run_with_batch(kind: EngineKind, batch: usize, seed: u64) -> sss_workload::ScenarioOutcome {
    let scenario = scenario(kind, seed);
    let injector = FaultInjector::new(scenario.faults.clone());
    let engine = kind.build_tuned(
        scenario.spec.nodes,
        scenario.replication.min(scenario.spec.nodes),
        NetProfile::Instant,
        EngineTuning::with_delivery_batch(batch),
        Some(&injector),
    );
    let outcome = run_scenario_on(engine.as_ref(), &injector, &scenario);
    injector.disarm();
    assert!(
        outcome.passed(),
        "{kind} with batch {batch} violated expectations: {:?}",
        outcome.violations
    );
    outcome
}

/// The SSS chaos-scenario outcome summary is bit-identical whether workers
/// deliver one message per wakeup (batch 1) or a full batch — mirroring the
/// shard-count determinism test of PR 3 for the batching layer.
#[test]
fn sss_scenario_summary_is_identical_across_batch_sizes() {
    let unbatched = run_with_batch(EngineKind::Sss, 1, 23);
    let batched = run_with_batch(EngineKind::Sss, 16, 23);
    assert_eq!(
        unbatched.summary(),
        batched.summary(),
        "delivery batch size must not change the SSS outcome summary"
    );
    assert_eq!(unbatched.read_only_aborts, 0);
}

/// Same logically-deterministic-outcome property for a baseline engine
/// whose abort counts are timing-dependent: committed totals, read-only mix
/// and the checker verdict are identical across batch sizes.
#[test]
fn baseline_deterministic_outcome_is_identical_across_batch_sizes() {
    let unbatched = run_with_batch(EngineKind::TwoPc, 1, 23);
    let batched = run_with_batch(EngineKind::TwoPc, 16, 23);
    assert_eq!(unbatched.committed, batched.committed);
    assert_eq!(unbatched.committed_read_only, batched.committed_read_only);
    assert_eq!(unbatched.consistency, Some(Ok(())));
    assert_eq!(batched.consistency, Some(Ok(())));
}
