//! Storage sharding must be invisible to protocol behaviour: the same
//! seeded chaos scenario produces the bit-identical outcome summary no
//! matter how many shards the storage layer is partitioned into. Sharding
//! changes *where* keys live inside a node, never what any transaction
//! observes.

use std::time::Duration;

use sss_engine::{EngineTuning, FaultInjector, NetProfile};
use sss_workload::scenario::{run_scenario_on, ChaosScenario, ScenarioExpectations};
use sss_workload::{EngineKind, FaultPlan, LinkFault, LinkSelector, WorkloadSpec};

fn scenario(kind: EngineKind, seed: u64) -> ChaosScenario {
    let spec = WorkloadSpec::new(3)
        .clients_per_node(2)
        .total_keys(48)
        .read_only_percent(40)
        .seed(seed);
    let expect = match kind {
        EngineKind::Sss => ScenarioExpectations::sss(),
        _ => ScenarioExpectations::serializable_baseline(),
    };
    ChaosScenario::new("shard-count-probe", spec)
        .ops_per_client(30)
        .expect(expect)
        .faults(
            FaultPlan::new(seed).link_fault(
                LinkFault::on(LinkSelector::All)
                    .jitter(Duration::from_micros(150))
                    .duplicate(15, Duration::from_micros(80)),
            ),
        )
}

fn run_with_shards(kind: EngineKind, shards: usize, seed: u64) -> sss_workload::ScenarioOutcome {
    let scenario = scenario(kind, seed);
    let injector = FaultInjector::new(scenario.faults.clone());
    let engine = kind.build_tuned(
        scenario.spec.nodes,
        scenario.replication.min(scenario.spec.nodes),
        NetProfile::Instant,
        EngineTuning::with_storage_shards(shards),
        Some(&injector),
    );
    let outcome = run_scenario_on(engine.as_ref(), &injector, &scenario);
    injector.disarm();
    assert!(
        outcome.passed(),
        "{kind} with {shards} shard(s) violated expectations: {:?}",
        outcome.violations
    );
    outcome
}

/// The `scenarios` catalog's SSS outcome summaries are bit-identical
/// whether the storage layer runs unsharded (arity 1, the pre-sharding
/// layout) or fully sharded: sharding changes where keys live inside a
/// node, never what any transaction observes.
#[test]
fn sss_scenario_summary_is_identical_across_shard_counts() {
    let unsharded = run_with_shards(EngineKind::Sss, 1, 11);
    let sharded = run_with_shards(EngineKind::Sss, 8, 11);
    assert_eq!(
        unsharded.summary(),
        sharded.summary(),
        "shard count must not change the SSS outcome summary"
    );
    assert_eq!(unsharded.read_only_aborts, 0);
}

/// For a baseline whose abort counts are timing-dependent (2PC read-only
/// transactions validate and may abort-and-retry), the *logically*
/// deterministic outcome — every generated transaction eventually commits,
/// with the generator-derived read-only mix, and a clean checker verdict —
/// must still be identical across shard counts.
#[test]
fn baseline_deterministic_outcome_is_identical_across_shard_counts() {
    let unsharded = run_with_shards(EngineKind::TwoPc, 1, 11);
    let sharded = run_with_shards(EngineKind::TwoPc, 8, 11);
    assert_eq!(unsharded.committed, sharded.committed);
    assert_eq!(unsharded.committed_read_only, sharded.committed_read_only);
    assert_eq!(unsharded.consistency, Some(Ok(())));
    assert_eq!(sharded.consistency, Some(Ok(())));
}
