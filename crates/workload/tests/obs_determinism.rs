//! Observability must be pure measurement: building an engine with phase
//! tracing, per-phase histograms and trace rings on (`EngineTuning::
//! observability`) may not change what any transaction observes. The same
//! seeded chaos scenario must therefore produce the bit-identical outcome
//! summary with tracing on and off for SSS (whose summary is fully
//! deterministic), and the logically deterministic outcome projection for
//! the baselines (whose retry counts are timing-dependent with or without
//! tracing, as in the sharding determinism suite). The traced runs must
//! also actually record spans — the flag is not allowed to be a silent
//! no-op.

use std::time::Duration;

use sss_engine::{EngineTuning, FaultInjector, NetProfile};
use sss_workload::scenario::{run_scenario_on, ChaosScenario, ScenarioExpectations};
use sss_workload::{
    EngineKind, FaultPlan, LinkFault, LinkSelector, TransactionEngine, WorkloadSpec,
};

fn scenario(seed: u64, expect: ScenarioExpectations, replication: usize) -> ChaosScenario {
    let spec = WorkloadSpec::new(3)
        .clients_per_node(2)
        .total_keys(48)
        .read_only_percent(40)
        .seed(seed);
    ChaosScenario::new("obs-probe", spec)
        .ops_per_client(25)
        .replication(replication)
        .expect(expect)
        .faults(
            FaultPlan::new(seed).link_fault(
                LinkFault::on(LinkSelector::All)
                    .jitter(Duration::from_micros(150))
                    .reorder(20, Duration::from_micros(120))
                    .duplicate(15, Duration::from_micros(80)),
            ),
        )
}

fn run(
    kind: EngineKind,
    scenario: &ChaosScenario,
    observability: bool,
) -> sss_workload::ScenarioOutcome {
    let injector = FaultInjector::new(scenario.faults.clone());
    let engine = kind.build_tuned(
        scenario.spec.nodes,
        scenario.replication.min(scenario.spec.nodes),
        NetProfile::Instant,
        EngineTuning::default().observability(observability),
        Some(&injector),
    );
    let outcome = run_scenario_on(engine.as_ref(), &injector, scenario);
    injector.disarm();
    assert!(
        outcome.passed(),
        "{kind:?} (observability={observability}) violated expectations: {:?}",
        outcome.violations
    );
    match engine.observability() {
        Some(hub) => {
            assert!(observability, "hub present despite tracing off");
            assert!(
                hub.spans_recorded() > 0,
                "{kind:?} ran with tracing on but recorded no spans"
            );
        }
        None => assert!(!observability, "tracing on but no hub retrievable"),
    }
    outcome
}

fn expectations(kind: EngineKind) -> (ScenarioExpectations, usize) {
    match kind {
        EngineKind::Sss => (ScenarioExpectations::sss(), 2),
        EngineKind::TwoPc => (ScenarioExpectations::serializable_baseline(), 2),
        EngineKind::Walter => (ScenarioExpectations::weak_baseline(), 2),
        // ROCOCO runs unreplicated, as in the paper's comparison.
        EngineKind::Rococo => (ScenarioExpectations::serializable_baseline(), 1),
    }
}

/// SSS: the full outcome summary is bit-identical with tracing on and off.
#[test]
fn sss_chaos_summary_is_identical_with_tracing_on_and_off() {
    let (expect, replication) = expectations(EngineKind::Sss);
    let scenario = scenario(31, expect, replication);
    let traced = run(EngineKind::Sss, &scenario, true);
    let untraced = run(EngineKind::Sss, &scenario, false);
    assert_eq!(
        traced.summary(),
        untraced.summary(),
        "observability changed the SSS chaos outcome summary"
    );
    assert_eq!(traced.read_only_aborts, 0);
}

/// Every baseline: the logically deterministic projection — every
/// generated transaction commits, the generator-derived read-only mix, a
/// clean checker verdict, no stall — is identical with tracing on and off
/// (retry counts are timing-dependent either way).
#[test]
fn baseline_chaos_outcome_is_identical_with_tracing_on_and_off() {
    for kind in [EngineKind::TwoPc, EngineKind::Walter, EngineKind::Rococo] {
        let (expect, replication) = expectations(kind);
        let scenario = scenario(31, expect, replication);
        let traced = run(kind, &scenario, true);
        let untraced = run(kind, &scenario, false);
        assert_eq!(traced.committed, untraced.committed, "{kind:?} committed");
        assert_eq!(
            traced.committed_read_only, untraced.committed_read_only,
            "{kind:?} read-only mix"
        );
        assert_eq!(traced.aborted, untraced.aborted, "{kind:?} abandoned");
        assert_eq!(traced.stuck, untraced.stuck, "{kind:?} stuck flag");
        assert_eq!(traced.consistency, untraced.consistency, "{kind:?} checker");
    }
}
