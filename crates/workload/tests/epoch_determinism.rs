//! Grouped external-commit confirmation must be invisible to protocol
//! behaviour: the same seeded chaos scenario produces the bit-identical
//! outcome summary whether every update transaction runs its own
//! `ConfirmExternal` round (epoch window 1 — the base protocol of §III-C)
//! or up to a full window shares one round with piggybacked
//! release/remove traffic. Grouping changes *which messages carry* the
//! confirmation barrier, never what any transaction observes.

use std::time::Duration;

use sss_engine::{EngineTuning, FaultInjector, NetProfile, DEFAULT_CONFIRM_EPOCH};
use sss_workload::scenario::{run_scenario_on, ChaosScenario, ScenarioExpectations};
use sss_workload::{EngineKind, FaultPlan, LinkFault, LinkSelector, WorkloadSpec};

fn scenario(seed: u64) -> ChaosScenario {
    let spec = WorkloadSpec::new(3)
        .clients_per_node(2)
        .total_keys(48)
        .read_only_percent(40)
        .seed(seed);
    ChaosScenario::new("epoch-window-probe", spec)
        .ops_per_client(30)
        .expect(ScenarioExpectations::sss())
        .faults(
            FaultPlan::new(seed).link_fault(
                LinkFault::on(LinkSelector::All)
                    .jitter(Duration::from_micros(150))
                    .reorder(20, Duration::from_micros(120))
                    .duplicate(15, Duration::from_micros(80)),
            ),
        )
}

fn run_with_tuning(tuning: EngineTuning, seed: u64) -> sss_workload::ScenarioOutcome {
    let scenario = scenario(seed);
    let injector = FaultInjector::new(scenario.faults.clone());
    let engine = EngineKind::Sss.build_tuned(
        scenario.spec.nodes,
        scenario.replication.min(scenario.spec.nodes),
        NetProfile::Instant,
        tuning,
        Some(&injector),
    );
    let outcome = run_scenario_on(engine.as_ref(), &injector, &scenario);
    injector.disarm();
    assert!(
        outcome.passed(),
        "SSS with tuning {tuning:?} violated expectations: {:?}",
        outcome.violations
    );
    outcome
}

/// The SSS chaos-scenario outcome summary is bit-identical with grouping
/// disabled (window 1: one standalone confirmation round and release per
/// update transaction) and with the default epoch window — the tentpole
/// acceptance check of the protocol-round-reduction change.
#[test]
fn sss_scenario_summary_is_identical_across_epoch_windows() {
    let singleton = run_with_tuning(EngineTuning::default().confirm_epoch(1), 23);
    let grouped = run_with_tuning(
        EngineTuning::default().confirm_epoch(DEFAULT_CONFIRM_EPOCH),
        23,
    );
    assert_eq!(
        singleton.summary(),
        grouped.summary(),
        "confirmation epoch window must not change the SSS outcome summary"
    );
    assert_eq!(singleton.read_only_aborts, 0);
}

/// Same property for the piggybacking A/B arm: grouped confirmation with
/// releases and removes sent standalone (piggyback off) matches the fully
/// piggybacked default bit-for-bit.
#[test]
fn sss_scenario_summary_is_identical_with_piggyback_off() {
    let standalone = run_with_tuning(EngineTuning::default().piggyback(false), 23);
    let piggybacked = run_with_tuning(EngineTuning::default().piggyback(true), 23);
    assert_eq!(
        standalone.summary(),
        piggybacked.summary(),
        "release/remove piggybacking must not change the SSS outcome summary"
    );
    assert_eq!(standalone.read_only_aborts, 0);
}

/// Grouping composes with delivery batching: sweeping both knobs together
/// still yields one bit-identical summary.
#[test]
fn sss_scenario_summary_is_identical_across_combined_sweeps() {
    let baseline = run_with_tuning(EngineTuning::with_delivery_batch(1).confirm_epoch(1), 29);
    for (batch, window) in [(1, 8), (16, 1), (16, DEFAULT_CONFIRM_EPOCH)] {
        let swept = run_with_tuning(
            EngineTuning::with_delivery_batch(batch).confirm_epoch(window),
            29,
        );
        assert_eq!(
            baseline.summary(),
            swept.summary(),
            "batch {batch} x epoch window {window} changed the SSS outcome summary"
        );
    }
}
