//! Scenario tests of the workload layer: the generated mixes match the
//! paper's benchmark configurations and the closed-loop driver reports
//! sensible statistics against a deliberately slow engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_storage::{Key, Value};
use sss_vclock::NodeId;
use sss_workload::{
    run_workload, EngineSession, KeySelection, TransactionEngine, TxnOutcome, TxnTemplate,
    WorkloadGenerator, WorkloadSpec,
};

/// An engine that commits everything but injects a fixed service time and
/// aborts every Nth update, used to validate the driver's accounting.
struct MeteredEngine {
    inner: Arc<MeteredInner>,
}

struct MeteredInner {
    nodes: usize,
    service_time: Duration,
    abort_every: u64,
    attempts: AtomicU64,
}

impl MeteredEngine {
    fn new(nodes: usize, service_time: Duration, abort_every: u64) -> Self {
        MeteredEngine {
            inner: Arc::new(MeteredInner {
                nodes,
                service_time,
                abort_every,
                attempts: AtomicU64::new(0),
            }),
        }
    }
}

struct MeteredSession {
    engine: Arc<MeteredInner>,
}

impl EngineSession for MeteredSession {
    fn run_update(&mut self, _read_keys: &[Key], _writes: &[(Key, Value)]) -> TxnOutcome {
        let n = self.engine.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        std::thread::sleep(self.engine.service_time);
        if self.engine.abort_every != 0 && n % self.engine.abort_every == 0 {
            TxnOutcome::Aborted
        } else {
            TxnOutcome::Committed {
                latency: self.engine.service_time,
                internal_latency: self.engine.service_time / 2,
            }
        }
    }

    fn run_read_only(&mut self, _read_keys: &[Key]) -> TxnOutcome {
        std::thread::sleep(self.engine.service_time);
        TxnOutcome::Committed {
            latency: self.engine.service_time,
            internal_latency: self.engine.service_time,
        }
    }
}

impl TransactionEngine for MeteredEngine {
    fn name(&self) -> &str {
        "metered"
    }

    fn nodes(&self) -> usize {
        self.inner.nodes
    }

    fn session(&self, _node: usize) -> Box<dyn EngineSession> {
        Box::new(MeteredSession {
            engine: Arc::clone(&self.inner),
        })
    }
}

#[test]
fn driver_throughput_matches_the_closed_loop_model() {
    // 2 nodes x 2 clients in a closed loop against a 2ms service time:
    // throughput must be close to clients / service_time and far from the
    // open-loop extreme.
    let engine = MeteredEngine::new(2, Duration::from_millis(2), 0);
    let spec = WorkloadSpec::new(2)
        .clients_per_node(2)
        .total_keys(64)
        .read_only_percent(50)
        .duration(Duration::from_millis(200));
    let report = run_workload(&engine, &spec);
    let expected = 4.0 / 0.002; // clients / service time = 2000 tx/s
    assert!(
        report.throughput() > expected * 0.5,
        "throughput {} too low",
        report.throughput()
    );
    assert!(
        report.throughput() < expected * 1.5,
        "throughput {} too high",
        report.throughput()
    );
    assert_eq!(report.aborted, 0);
    assert!(report.latency.mean >= Duration::from_millis(2));
    // The internal/external split recorded by the engine surfaces in the
    // report (update transactions only).
    assert!(report.mean_pre_commit_wait() >= Duration::from_micros(500));
}

#[test]
fn driver_counts_aborts_without_losing_committed_work() {
    let engine = MeteredEngine::new(1, Duration::from_micros(200), 4);
    let spec = WorkloadSpec::new(1)
        .clients_per_node(2)
        .total_keys(32)
        .read_only_percent(0)
        .duration(Duration::from_millis(100));
    let report = run_workload(&engine, &spec);
    assert!(
        report.aborted > 0,
        "the metered engine aborts every 4th update"
    );
    assert!(
        report.committed > report.aborted,
        "most updates still commit"
    );
    let abort_rate = report.abort_rate();
    assert!(
        (0.15..0.40).contains(&abort_rate),
        "abort rate {abort_rate} should be near 25%"
    );
}

#[test]
fn generated_mix_matches_the_paper_profiles() {
    // The paper's update profile accesses 2 keys; read-only profiles access
    // 2..16 keys; keys within a transaction are distinct.
    for ro_count in [2usize, 8, 16] {
        let spec = WorkloadSpec::new(4)
            .total_keys(5_000)
            .read_only_percent(80)
            .read_only_access_count(ro_count);
        let mut generator = WorkloadGenerator::new(&spec, NodeId(2), 0);
        let mut read_only = 0usize;
        let total = 500;
        for _ in 0..total {
            match generator.next_txn() {
                TxnTemplate::ReadOnly { keys } => {
                    read_only += 1;
                    assert_eq!(keys.len(), ro_count);
                }
                TxnTemplate::Update { keys, values } => {
                    assert_eq!(keys.len(), 2);
                    assert_eq!(values.len(), 2);
                }
            }
        }
        let share = read_only as f64 / total as f64;
        assert!(
            (0.70..0.90).contains(&share),
            "read-only share {share} should be near 0.8"
        );
    }
}

#[test]
fn local_selection_differs_between_nodes_but_stays_in_the_key_space() {
    let spec = WorkloadSpec::new(4)
        .total_keys(256)
        .read_only_percent(100)
        .key_selection(KeySelection::Local {
            local_fraction_percent: 80,
        });
    let started = Instant::now();
    let mut distinct_first_keys = std::collections::HashSet::new();
    for node in 0..4 {
        let mut generator = WorkloadGenerator::new(&spec, NodeId(node), 0);
        for _ in 0..50 {
            for key in generator.next_txn().keys() {
                // Keys always come from the configured key space.
                let index: u64 = key
                    .as_str()
                    .strip_prefix("key-")
                    .expect("generated keys use the key- prefix")
                    .parse()
                    .expect("numeric key suffix");
                assert!(index < 256);
                distinct_first_keys.insert(key.clone());
            }
        }
    }
    // Locality biases different nodes towards different keys, so the union
    // across nodes must cover a reasonable part of the space.
    assert!(distinct_first_keys.len() > 50);
    assert!(started.elapsed() < Duration::from_secs(5));
}
