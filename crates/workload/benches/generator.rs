//! Micro-benchmark of the per-client workload generation hot path.

use criterion::{criterion_group, criterion_main, Criterion};

use sss_vclock::NodeId;
use sss_workload::{WorkloadGenerator, WorkloadSpec};

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/next_txn", |bencher| {
        let spec = WorkloadSpec::new(8).total_keys(5_000).read_only_percent(80);
        let mut generator = WorkloadGenerator::new(&spec, NodeId(0), 0);
        bencher.iter(|| std::hint::black_box(generator.next_txn()))
    });
}

criterion_group!(benches, bench_workload_generation);
criterion_main!(benches);
