//! Workload specification.

use std::time::Duration;

/// How a client chooses the keys a transaction accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySelection {
    /// Uniformly at random over the whole key space (the paper's default).
    Uniform,
    /// With probability `local_fraction_percent`, the key is chosen from the
    /// partition of keys whose primary replica is the client's node; the
    /// paper's "50% locality" configuration (Figure 7) uses 50.
    Local {
        /// Percentage (0-100) of accesses biased to local keys.
        local_fraction_percent: u8,
    },
}

/// A structurally invalid [`WorkloadSpec`].
///
/// Returned by [`WorkloadSpec::validate`]; the driver and the scenario
/// runner reject invalid specs up front instead of silently producing
/// nonsense workloads (e.g. a locality bias above 100% that would skew
/// every access local, or a zero-key space that would spin forever
/// picking distinct keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// The cluster has no nodes.
    ZeroNodes,
    /// No clients would run (zero clients per node).
    ZeroClients,
    /// The key space is empty.
    ZeroKeys,
    /// `read_only_percent` exceeds 100.
    ReadOnlyPercentOutOfRange(u8),
    /// `local_fraction_percent` exceeds 100.
    LocalFractionOutOfRange(u8),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ZeroNodes => write!(f, "workload needs at least one node"),
            SpecError::ZeroClients => write!(f, "workload needs at least one client per node"),
            SpecError::ZeroKeys => write!(f, "workload needs a non-empty key space"),
            SpecError::ReadOnlyPercentOutOfRange(p) => {
                write!(f, "read-only percentage must be 0-100, got {p}")
            }
            SpecError::LocalFractionOutOfRange(p) => {
                write!(f, "local-access fraction must be 0-100, got {p}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete description of one benchmark configuration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Closed-loop clients per node (the paper uses 10 unless stated).
    pub clients_per_node: usize,
    /// Total number of shared keys (the paper uses 5,000 or 10,000).
    pub total_keys: usize,
    /// Percentage (0-100) of read-only transactions.
    pub read_only_percent: u8,
    /// Keys read (and written) by an update transaction (the paper uses 2).
    pub update_access_count: usize,
    /// Keys read by a read-only transaction (2 in most experiments, up to 16
    /// in Figure 8).
    pub read_only_access_count: usize,
    /// Key-selection policy.
    pub key_selection: KeySelection,
    /// How long each trial runs.
    pub duration: Duration,
    /// Number of trials averaged per data point (the paper uses 5).
    pub trials: usize,
    /// Base random seed; each client derives its own stream from it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A specification with the paper's defaults: 10 clients per node, 5,000
    /// keys, 2-key update transactions, 2-key read-only transactions,
    /// uniform key selection.
    pub fn new(nodes: usize) -> Self {
        WorkloadSpec {
            nodes,
            clients_per_node: 10,
            total_keys: 5_000,
            read_only_percent: 50,
            update_access_count: 2,
            read_only_access_count: 2,
            key_selection: KeySelection::Uniform,
            duration: Duration::from_millis(500),
            trials: 1,
            seed: 42,
        }
    }

    /// Sets the number of clients per node.
    pub fn clients_per_node(mut self, clients: usize) -> Self {
        self.clients_per_node = clients;
        self
    }

    /// Sets the total key count.
    pub fn total_keys(mut self, keys: usize) -> Self {
        self.total_keys = keys;
        self
    }

    /// Sets the read-only percentage (0-100).
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    pub fn read_only_percent(mut self, percent: u8) -> Self {
        assert!(percent <= 100, "read-only percentage must be 0-100");
        self.read_only_percent = percent;
        self
    }

    /// Sets the number of keys accessed by read-only transactions.
    pub fn read_only_access_count(mut self, count: usize) -> Self {
        self.read_only_access_count = count;
        self
    }

    /// Sets the number of keys accessed by update transactions.
    pub fn update_access_count(mut self, count: usize) -> Self {
        self.update_access_count = count;
        self
    }

    /// Sets the key selection policy.
    pub fn key_selection(mut self, selection: KeySelection) -> Self {
        self.key_selection = selection;
        self
    }

    /// Sets the trial duration.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the number of trials averaged per data point.
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the base random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of closed-loop clients in the system.
    pub fn total_clients(&self) -> usize {
        self.nodes * self.clients_per_node
    }

    /// Checks the spec for structural validity.
    ///
    /// The builder methods already reject some invalid values eagerly, but
    /// specs can also be assembled field-by-field; the driver and the
    /// scenario runner call this before running anything.
    ///
    /// # Errors
    ///
    /// Returns the first [`SpecError`] found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.nodes == 0 {
            return Err(SpecError::ZeroNodes);
        }
        if self.clients_per_node == 0 {
            return Err(SpecError::ZeroClients);
        }
        if self.total_keys == 0 {
            return Err(SpecError::ZeroKeys);
        }
        if self.read_only_percent > 100 {
            return Err(SpecError::ReadOnlyPercentOutOfRange(self.read_only_percent));
        }
        if let KeySelection::Local {
            local_fraction_percent,
        } = self.key_selection
        {
            if local_fraction_percent > 100 {
                return Err(SpecError::LocalFractionOutOfRange(local_fraction_percent));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let spec = WorkloadSpec::new(5);
        assert_eq!(spec.clients_per_node, 10);
        assert_eq!(spec.total_keys, 5_000);
        assert_eq!(spec.update_access_count, 2);
        assert_eq!(spec.read_only_access_count, 2);
        assert_eq!(spec.key_selection, KeySelection::Uniform);
        assert_eq!(spec.total_clients(), 50);
    }

    #[test]
    fn builder_overrides() {
        let spec = WorkloadSpec::new(3)
            .clients_per_node(2)
            .total_keys(100)
            .read_only_percent(80)
            .read_only_access_count(16)
            .update_access_count(4)
            .key_selection(KeySelection::Local {
                local_fraction_percent: 50,
            })
            .duration(Duration::from_millis(10))
            .trials(3)
            .seed(7);
        assert_eq!(spec.read_only_percent, 80);
        assert_eq!(spec.read_only_access_count, 16);
        assert_eq!(spec.trials, 3);
        assert_eq!(spec.total_clients(), 6);
    }

    #[test]
    #[should_panic(expected = "0-100")]
    fn invalid_percentage_panics() {
        let _ = WorkloadSpec::new(2).read_only_percent(101);
    }

    #[test]
    fn validation_accepts_the_defaults() {
        assert_eq!(WorkloadSpec::new(3).validate(), Ok(()));
    }

    #[test]
    fn validation_rejects_structurally_invalid_specs() {
        let mut spec = WorkloadSpec::new(2);
        spec.nodes = 0;
        assert_eq!(spec.validate(), Err(SpecError::ZeroNodes));

        let spec = WorkloadSpec::new(2).clients_per_node(0);
        assert_eq!(spec.validate(), Err(SpecError::ZeroClients));

        let spec = WorkloadSpec::new(2).total_keys(0);
        assert_eq!(spec.validate(), Err(SpecError::ZeroKeys));

        let mut spec = WorkloadSpec::new(2);
        spec.read_only_percent = 150;
        assert_eq!(
            spec.validate(),
            Err(SpecError::ReadOnlyPercentOutOfRange(150))
        );

        let spec = WorkloadSpec::new(2).key_selection(KeySelection::Local {
            local_fraction_percent: 101,
        });
        assert_eq!(
            spec.validate(),
            Err(SpecError::LocalFractionOutOfRange(101))
        );
        assert!(!spec.validate().unwrap_err().to_string().is_empty());
    }
}
