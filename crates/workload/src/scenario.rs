//! Chaos scenarios: a workload, a fault plan, and expected-outcome
//! assertions, executed with history recording and a stuck-run detector.
//!
//! A [`ChaosScenario`] runs a *fixed-operation* closed loop (every client
//! commits a fixed number of transactions, retrying aborted updates with
//! the same template) instead of the duration-based loop of the benchmark
//! driver. That makes the outcome summary deterministic: with every
//! transaction eventually committing, the committed/aborted counts and the
//! read-only mix depend only on the seeded generator streams — not on
//! thread scheduling — so the same seed and the same [`FaultPlan`] produce
//! a bit-identical [`ScenarioOutcome::summary`].
//!
//! Every committed transaction is recorded in an `sss-consistency`
//! [`History`]: written values encode the writer's driver-level transaction
//! id, and observed values are decoded back into writer attributions, so
//! the external-consistency checker can verify the faulted run afterwards.
//! Every injected fault is made safety-preserving: delay, reorder,
//! duplicate, partition-with-heal and pause are so natively, and loss or
//! crash-stop plans auto-enable the reliable-delivery layer plus the
//! restart-recovery protocol (see `sss_core::SssCluster::start`). A checker
//! failure under any scenario is therefore a protocol bug, not a harness
//! artifact.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sss_consistency::{
    check_all, History, HistoryRecorder, ReadRecord, TxnKind, TxnRecord, WriteRecord,
};
use sss_engine::{
    chrome_trace_json, EngineKind, EngineTuning, FaultInjector, FaultPlan, NetProfile, SimRuntime,
    TransactionEngine, WatchdogConfig, WatchdogCore, WatchdogVerdict,
};
use sss_storage::{Key, TxnId, Value};
use sss_vclock::{runtime, NodeId};

use crate::generator::{TxnTemplate, WorkloadGenerator};
use crate::spec::{SpecError, WorkloadSpec};

/// How often the stuck-run watchdog re-checks the progress counter.
const WATCHDOG_TICK: Duration = Duration::from_millis(20);

/// Assertions evaluated against a finished scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioExpectations {
    /// Run the external-consistency / snapshot checker over the recorded
    /// history and fail the scenario on any violation. Off for engines that
    /// intentionally provide weaker guarantees (Walter's PSI admits long
    /// forks by design).
    pub external_consistency: bool,
    /// Fail the scenario if any read-only transaction attempt aborted (the
    /// SSS headline property).
    pub zero_read_only_aborts: bool,
    /// Fail the scenario unless every generated transaction eventually
    /// committed (no client gave up past its retry cap).
    pub all_committed: bool,
}

impl ScenarioExpectations {
    /// The full set of guarantees SSS claims under any safety-preserving
    /// fault plan.
    pub fn sss() -> Self {
        ScenarioExpectations {
            external_consistency: true,
            zero_read_only_aborts: true,
            all_committed: true,
        }
    }

    /// SSS under crash-stop faults: consistency and liveness still gate,
    /// but the abort-free-reads headline is conditional on the serving node
    /// staying up — a read parked on a node whose crash wipes the parked
    /// set (or begun while the colocated node is down past the
    /// `NodeUnavailable` backoff budget) surfaces as an abort and is
    /// retried by the client.
    pub fn sss_under_crash() -> Self {
        ScenarioExpectations {
            external_consistency: true,
            zero_read_only_aborts: false,
            all_committed: true,
        }
    }

    /// Expectations for a serializable baseline (2PC, ROCOCO): consistency
    /// must hold, but read-only transactions may abort and be retried.
    pub fn serializable_baseline() -> Self {
        ScenarioExpectations {
            external_consistency: true,
            zero_read_only_aborts: false,
            all_committed: true,
        }
    }

    /// Expectations for an intentionally weaker engine (Walter): only
    /// liveness is asserted.
    pub fn weak_baseline() -> Self {
        ScenarioExpectations {
            external_consistency: false,
            zero_read_only_aborts: false,
            all_committed: true,
        }
    }
}

/// One named chaos scenario: a workload, a fault plan, and the assertions
/// the run must satisfy.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Scenario name used in reports ("partition-heal", ...).
    pub name: String,
    /// The workload shape (nodes, clients, keys, read-only mix, seed). The
    /// spec's `duration`/`trials` fields are ignored — scenarios run a
    /// fixed number of operations per client instead.
    pub spec: WorkloadSpec,
    /// Committed transactions each client must produce.
    pub ops_per_client: usize,
    /// Replication degree the engine is built with.
    pub replication: usize,
    /// Steady-state network profile; faults are layered on top.
    pub profile: NetProfile,
    /// The fault plan, armed after the key space is populated.
    pub faults: FaultPlan,
    /// Assertions evaluated after the run.
    pub expect: ScenarioExpectations,
    /// Abort attempts per transaction before a client gives up. Generous:
    /// giving up breaks the `all_committed` expectation and the summary's
    /// determinism, so the cap only exists to bound true livelocks.
    pub retry_cap: u32,
    /// With no committed transaction for this long, the run is declared
    /// stuck: the abort flag is raised, per-node diagnostics are captured
    /// and the scenario fails fast instead of hanging.
    pub stall_timeout: Duration,
}

impl ChaosScenario {
    /// A scenario named `name` over `spec` with no faults, SSS
    /// expectations, and defaults sized for tests (20 ops per client).
    pub fn new(name: impl Into<String>, spec: WorkloadSpec) -> Self {
        ChaosScenario {
            name: name.into(),
            spec,
            ops_per_client: 20,
            replication: 2,
            profile: NetProfile::Instant,
            faults: FaultPlan::default(),
            expect: ScenarioExpectations::sss(),
            retry_cap: 10_000,
            stall_timeout: Duration::from_secs(15),
        }
    }

    /// Sets the committed-transactions-per-client target.
    pub fn ops_per_client(mut self, ops: usize) -> Self {
        self.ops_per_client = ops;
        self
    }

    /// Sets the replication degree.
    pub fn replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Sets the steady-state network profile.
    pub fn profile(mut self, profile: NetProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the expectations.
    pub fn expect(mut self, expect: ScenarioExpectations) -> Self {
        self.expect = expect;
        self
    }

    /// Sets the stall timeout of the stuck-run detector.
    pub fn stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Total committed transactions the scenario demands.
    pub fn expected_total(&self) -> u64 {
        (self.spec.total_clients() * self.ops_per_client) as u64
    }
}

/// The result of one scenario run.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Engine label.
    pub engine: String,
    /// Closed-loop clients that ran.
    pub clients: usize,
    /// Committed transactions per client demanded by the scenario.
    pub ops_per_client: usize,
    /// Transactions committed by clients (excludes population).
    pub committed: u64,
    /// Committed read-only transactions.
    pub committed_read_only: u64,
    /// Transactions abandoned (retry cap exhausted or stuck-run abort).
    pub aborted: u64,
    /// Read-only transaction attempts that aborted. Must be zero for SSS.
    pub read_only_aborts: u64,
    /// Update-transaction retries (diagnostic; scheduling-dependent, so
    /// deliberately *not* part of [`ScenarioOutcome::summary`]).
    pub update_retries: u64,
    /// `true` if the stuck-run detector fired.
    pub stuck: bool,
    /// Stall report captured when the detector fired: the watchdog's last N
    /// progress snapshots (each with per-node diagnostics) leading up to the
    /// stall, not just the final capture.
    pub diagnostics: Option<String>,
    /// Chrome-trace JSON of the engine's trace rings, dumped when the
    /// detector fired on an observability-enabled engine (see
    /// [`run_scenario_with_tuning`]). Scheduling-dependent, so excluded from
    /// [`ScenarioOutcome::summary`].
    pub trace_dump: Option<String>,
    /// Consistency-checker verdict: `None` when unchecked, `Some(Ok(()))`
    /// on pass, `Some(Err(description))` on violation.
    pub consistency: Option<Result<(), String>>,
    /// Every failed expectation, human-readable. Empty means the scenario
    /// passed.
    pub violations: Vec<String>,
    /// The recorded history (including population), for further checking.
    pub history: History,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
}

impl ScenarioOutcome {
    /// `true` when every expectation held and the run was not stuck.
    pub fn passed(&self) -> bool {
        !self.stuck && self.violations.is_empty()
    }

    /// FNV-1a fingerprint of the deterministic projection of the run: the
    /// [`ScenarioOutcome::summary`] string plus every recorded transaction
    /// in completion order (id, kind, reads with their writer attributions
    /// and observed values, writes). Two runs with the same engine,
    /// scenario and simulation seed must produce the same fingerprint; the
    /// seed-sweep tier and the replay-regression corpus compare these.
    ///
    /// Wall-clock data (timestamps, retry counts, diagnostics) is excluded,
    /// so the fingerprint is also meaningful for threaded runs — but only
    /// simulated runs promise bit-identical replay, because only there is
    /// the recorder's completion order deterministic.
    pub fn fingerprint(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn eat(&mut self, bytes: &[u8]) {
                for &byte in bytes {
                    self.0 ^= u64::from(byte);
                    self.0 = self.0.wrapping_mul(0x100_0000_01b3);
                }
            }
            fn eat_u64(&mut self, value: u64) {
                self.eat(&value.to_le_bytes());
            }
        }
        let mut fnv = Fnv(0xcbf2_9ce4_8422_2325);
        fnv.eat(self.summary().as_bytes());
        for record in self.history.transactions() {
            fnv.eat_u64(record.id.origin.index() as u64);
            fnv.eat_u64(record.id.seq);
            fnv.eat_u64(matches!(record.kind, TxnKind::Update) as u64);
            for read in &record.reads {
                fnv.eat(read.key.as_str().as_bytes());
                match read.observed_writer {
                    Some(writer) => {
                        fnv.eat_u64(1 + writer.origin.index() as u64);
                        fnv.eat_u64(writer.seq);
                    }
                    None => fnv.eat_u64(0),
                }
                if let Some(value) = &read.value {
                    fnv.eat(value.as_bytes());
                }
            }
            for write in &record.writes {
                fnv.eat(write.key.as_str().as_bytes());
                fnv.eat(write.value.as_bytes());
            }
        }
        fnv.0
    }

    /// The deterministic projection of the outcome: identical across runs
    /// with the same seed and fault plan (wall-clock times, retry counts
    /// and diagnostics are excluded). This is the string the determinism
    /// tests compare bit-for-bit.
    pub fn summary(&self) -> String {
        let consistency = match &self.consistency {
            None => "unchecked",
            Some(Ok(())) => "ok",
            Some(Err(_)) => "violated",
        };
        format!(
            "scenario={} engine={} clients={} ops-per-client={} committed={} \
             read-only-committed={} aborted={} read-only-aborts={} consistency={} stuck={}",
            self.scenario,
            self.engine,
            self.clients,
            self.ops_per_client,
            self.committed,
            self.committed_read_only,
            self.aborted,
            self.read_only_aborts,
            consistency,
            self.stuck,
        )
    }
}

/// Encodes a driver-level writer id into a stored value so observed reads
/// can be attributed by the consistency checker.
fn encode_writer(id: TxnId, slot: u64) -> Value {
    Value::new(format!("{}:{}:{}", id.origin.index(), id.seq, slot).into_bytes())
}

/// Decodes the writer id out of a value produced by [`encode_writer`].
fn decode_writer(value: &Value) -> Option<TxnId> {
    let text = value.as_utf8()?;
    let mut parts = text.split(':');
    let origin: usize = parts.next()?.parse().ok()?;
    let seq: u64 = parts.next()?.parse().ok()?;
    Some(TxnId::new(NodeId(origin), seq))
}

/// Origin used for driver-level ids: population transactions use origin 0,
/// client `c` uses origin `c + 1`.
fn client_origin(client_index: usize) -> NodeId {
    NodeId(client_index + 1)
}

struct ClientTally {
    committed: u64,
    committed_read_only: u64,
    aborted: u64,
    read_only_aborts: u64,
    update_retries: u64,
}

/// Populates the key space with attributable seed values, recording the
/// population transactions in `recorder`.
fn populate_recorded<E: TransactionEngine + ?Sized>(
    engine: &E,
    spec: &WorkloadSpec,
    recorder: &HistoryRecorder,
) {
    let mut session = engine.session(0);
    let keys: Vec<Key> = WorkloadGenerator::all_keys(spec).collect();
    for (chunk_index, chunk) in keys.chunks(64).enumerate() {
        let id = TxnId::new(NodeId(0), chunk_index as u64);
        let writes: Vec<(Key, Value)> = chunk
            .iter()
            .enumerate()
            .map(|(slot, k)| (k.clone(), encode_writer(id, slot as u64)))
            .collect();
        let started = runtime::now();
        for _ in 0..16 {
            if session.run_update(&[], &writes).is_committed() {
                recorder.record(TxnRecord {
                    id,
                    kind: TxnKind::Update,
                    started,
                    finished: runtime::now(),
                    reads: Vec::new(),
                    writes: writes
                        .iter()
                        .map(|(k, v)| WriteRecord {
                            key: k.clone(),
                            value: v.clone(),
                        })
                        .collect(),
                });
                break;
            }
        }
    }
}

/// One closed-loop client: commits `ops_per_client` transactions from its
/// seeded generator stream, retrying aborted updates, recording every
/// commit. Shared between the threaded runner (one OS thread per client)
/// and the simulation runner (one cooperative task per client); timestamps
/// come from [`runtime::now`], so they are virtual under simulation.
/// Attempt-scaled pause before retrying an aborted transaction. Under the
/// simulator an immediate retry re-runs at the same virtual instant, so two
/// conflicting updates can abort each other in a loop without virtual time
/// ever advancing (a virtual-time livelock that only ends at the retry
/// cap); a short, growing pause moves the clock between attempts and lets
/// the seeded scheduler break the tie. Under the threaded runner the same
/// pause is a cheap contention throttle.
///
/// Jitter-free linear [`runtime::Backoff`], 50µs per attempt capped at 2ms:
/// the exact schedule of the historical hand-rolled pause, so the pinned
/// replay-corpus fingerprints survive the extraction.
fn retry_pause(attempts: u32) {
    runtime::Backoff::linear(Duration::from_micros(50), Duration::from_millis(2)).pause(attempts);
}

fn run_client<E: TransactionEngine + ?Sized>(
    engine: &E,
    scenario: &ChaosScenario,
    node: usize,
    client: usize,
    progress: &AtomicU64,
    abort: &AtomicBool,
    recorder: &HistoryRecorder,
) -> ClientTally {
    let spec = &scenario.spec;
    let client_index = node * spec.clients_per_node + client;
    let mut generator = WorkloadGenerator::new(spec, NodeId(node), client);
    let mut session = engine.session(node);
    let origin = client_origin(client_index);
    let mut tally = ClientTally {
        committed: 0,
        committed_read_only: 0,
        aborted: 0,
        read_only_aborts: 0,
        update_retries: 0,
    };
    for op in 0..scenario.ops_per_client {
        let id = TxnId::new(origin, op as u64);
        let template = generator.next_txn();
        let mut attempts: u32 = 0;
        loop {
            if abort.load(Ordering::Relaxed) || attempts >= scenario.retry_cap {
                tally.aborted += 1;
                break;
            }
            attempts += 1;
            let started = runtime::now();
            match &template {
                TxnTemplate::ReadOnly { keys } => {
                    let (outcome, observed) = session.run_read_only_observed(keys);
                    if !outcome.is_committed() {
                        tally.read_only_aborts += 1;
                        retry_pause(attempts);
                        continue;
                    }
                    let reads = keys
                        .iter()
                        .zip(observed)
                        .map(|(key, value)| ReadRecord {
                            key: key.clone(),
                            observed_writer: value.as_ref().and_then(decode_writer),
                            value,
                        })
                        .collect();
                    recorder.record(TxnRecord {
                        id,
                        kind: TxnKind::ReadOnly,
                        started,
                        finished: runtime::now(),
                        reads,
                        writes: Vec::new(),
                    });
                    tally.committed += 1;
                    tally.committed_read_only += 1;
                    progress.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                TxnTemplate::Update { keys, .. } => {
                    // The generator's values are replaced by writer-encoded
                    // ones so that observed reads stay attributable.
                    let writes: Vec<(Key, Value)> = keys
                        .iter()
                        .enumerate()
                        .map(|(slot, k)| (k.clone(), encode_writer(id, slot as u64)))
                        .collect();
                    let (outcome, observed) = session.run_update_observed(keys, &writes);
                    if !outcome.is_committed() {
                        tally.update_retries += 1;
                        retry_pause(attempts);
                        continue;
                    }
                    let reads = keys
                        .iter()
                        .zip(observed)
                        .map(|(key, value)| ReadRecord {
                            key: key.clone(),
                            observed_writer: value.as_ref().and_then(decode_writer),
                            value,
                        })
                        .collect();
                    recorder.record(TxnRecord {
                        id,
                        kind: TxnKind::Update,
                        started,
                        finished: runtime::now(),
                        reads,
                        writes: writes
                            .iter()
                            .map(|(k, v)| WriteRecord {
                                key: k.clone(),
                                value: v.clone(),
                            })
                            .collect(),
                    });
                    tally.committed += 1;
                    progress.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
        }
        if abort.load(Ordering::Relaxed) {
            // Count the remaining, never-attempted operations so the
            // totals still add up.
            tally.aborted += (scenario.ops_per_client - op - 1) as u64;
            break;
        }
    }
    tally
}

/// Folds per-client tallies, checker verdicts and expectation violations
/// into the final [`ScenarioOutcome`]. Shared by the threaded and the
/// simulation runners.
#[allow(clippy::too_many_arguments)]
fn finish_outcome(
    engine_name: &str,
    scenario: &ChaosScenario,
    tallies: Vec<ClientTally>,
    stuck: bool,
    diagnostics: Option<String>,
    trace_dump: Option<String>,
    history: History,
    elapsed: Duration,
) -> ScenarioOutcome {
    let mut committed = 0;
    let mut committed_read_only = 0;
    let mut aborted = 0;
    let mut read_only_aborts = 0;
    let mut update_retries = 0;
    for tally in tallies {
        committed += tally.committed;
        committed_read_only += tally.committed_read_only;
        aborted += tally.aborted;
        read_only_aborts += tally.read_only_aborts;
        update_retries += tally.update_retries;
    }

    let mut violations = Vec::new();
    let consistency = if scenario.expect.external_consistency {
        match check_all(&history) {
            Ok(()) => Some(Ok(())),
            Err(violation) => {
                violations.push(format!("consistency violation: {violation}"));
                Some(Err(violation.to_string()))
            }
        }
    } else {
        None
    };
    if scenario.expect.zero_read_only_aborts && read_only_aborts > 0 {
        violations.push(format!(
            "read-only transactions aborted {read_only_aborts} time(s); SSS promises zero"
        ));
    }
    if scenario.expect.all_committed && (aborted > 0 || committed != scenario.expected_total()) {
        violations.push(format!(
            "expected {} committed transactions, got {committed} ({aborted} abandoned)",
            scenario.expected_total()
        ));
    }
    if stuck {
        violations.push(format!(
            "run stalled for {:?} with no committed transaction",
            scenario.stall_timeout
        ));
    }

    ScenarioOutcome {
        scenario: scenario.name.clone(),
        engine: engine_name.to_string(),
        clients: scenario.spec.total_clients(),
        ops_per_client: scenario.ops_per_client,
        committed,
        committed_read_only,
        aborted,
        read_only_aborts,
        update_retries,
        stuck,
        diagnostics,
        trace_dump,
        consistency,
        violations,
        history,
        elapsed,
    }
}

/// Builds the engine under the scenario's fault plan, populates the key
/// space fault-free, arms the plan, runs the fixed-operation workload with
/// history recording and the stuck-run detector, and evaluates the
/// scenario's expectations.
///
/// # Errors
///
/// Returns the [`SpecError`] if the scenario's workload spec is invalid.
pub fn run_scenario(
    kind: EngineKind,
    scenario: &ChaosScenario,
) -> Result<ScenarioOutcome, SpecError> {
    run_scenario_with_tuning(kind, scenario, EngineTuning::default())
}

/// [`run_scenario`] with explicit engine tuning, e.g. to run a chaos
/// scenario with observability on (`EngineTuning::default()
/// .observability(true)`) so a stuck run auto-dumps its trace rings into
/// [`ScenarioOutcome::trace_dump`].
///
/// # Errors
///
/// Returns the [`SpecError`] if the scenario's workload spec is invalid.
pub fn run_scenario_with_tuning(
    kind: EngineKind,
    scenario: &ChaosScenario,
    tuning: EngineTuning,
) -> Result<ScenarioOutcome, SpecError> {
    scenario.spec.validate()?;
    let injector = FaultInjector::new(scenario.faults.clone());
    let engine = kind.build_tuned(
        scenario.spec.nodes,
        scenario.replication.min(scenario.spec.nodes),
        scenario.profile,
        tuning,
        Some(&injector),
    );
    let outcome = run_scenario_on(engine.as_ref(), &injector, scenario);
    injector.disarm();
    Ok(outcome)
}

/// [`run_scenario`] against an already-built engine; `injector` is armed
/// after population (pass an injector built from an empty plan for a
/// fault-free control run).
pub fn run_scenario_on<E: TransactionEngine + ?Sized>(
    engine: &E,
    injector: &Arc<FaultInjector>,
    scenario: &ChaosScenario,
) -> ScenarioOutcome {
    let spec = &scenario.spec;
    assert_eq!(
        engine.nodes(),
        spec.nodes,
        "scenario spec and engine disagree on the node count"
    );

    let recorder = Arc::new(HistoryRecorder::new());
    populate_recorded(engine, spec, &recorder);
    injector.arm();

    let start = Instant::now();
    let progress = Arc::new(AtomicU64::new(0));
    let abort = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let stuck_diagnostics: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let stuck_trace: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        // Stuck-run watchdog: with no committed transaction for
        // `stall_timeout`, capture the stall report and raise the abort flag
        // so clients bail out instead of hanging forever. The WatchdogCore
        // samples engine diagnostics into a bounded history, so the report
        // shows the run-up to the stall, not just the moment it tripped.
        {
            let progress = Arc::clone(&progress);
            let abort = Arc::clone(&abort);
            let done = Arc::clone(&done);
            let diagnostics = Arc::clone(&stuck_diagnostics);
            let trace_dump = Arc::clone(&stuck_trace);
            let stall_timeout = scenario.stall_timeout;
            let engine_ref = &engine;
            scope.spawn(move || {
                let mut watchdog = WatchdogCore::new(WatchdogConfig {
                    stall_after: stall_timeout,
                    ..WatchdogConfig::default()
                });
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(WATCHDOG_TICK);
                    let current = progress.load(Ordering::Relaxed);
                    // Liveness rides along with the diagnostics so a stall
                    // report can say "node 2 crashed" instead of leaving the
                    // reader to infer it from mailbox depths.
                    let verdict = watchdog.observe_with(
                        current,
                        || engine_ref.diagnostics().unwrap_or_default(),
                        || engine_ref.node_liveness().unwrap_or_default(),
                    );
                    if verdict == WatchdogVerdict::Stalled {
                        *diagnostics.lock() = Some(watchdog.report());
                        // With observability on, auto-dump the trace rings:
                        // the last ~32k spans per node show what every
                        // in-flight transaction was doing when it stalled.
                        if let Some(hub) = engine_ref.observability() {
                            let group = (engine_ref.name().to_string(), hub.drain_spans());
                            *trace_dump.lock() = Some(chrome_trace_json(&[group]));
                        }
                        abort.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }

        let mut handles = Vec::new();
        for node in 0..spec.nodes {
            for client in 0..spec.clients_per_node {
                let progress = Arc::clone(&progress);
                let abort = Arc::clone(&abort);
                let recorder = Arc::clone(&recorder);
                let engine_ref = &engine;
                handles.push(scope.spawn(move || {
                    run_client(
                        *engine_ref,
                        scenario,
                        node,
                        client,
                        &progress,
                        &abort,
                        &recorder,
                    )
                }));
            }
        }

        let tallies: Vec<ClientTally> = handles
            .into_iter()
            .map(|h| h.join().expect("scenario client panicked"))
            .collect();
        done.store(true, Ordering::Relaxed);
        tallies
    });

    let elapsed = start.elapsed();
    let stuck = abort.load(Ordering::Relaxed);
    let diagnostics = stuck_diagnostics.lock().take();
    let trace_dump = stuck_trace.lock().take();
    finish_outcome(
        engine.name(),
        scenario,
        tallies,
        stuck,
        diagnostics,
        trace_dump,
        recorder.snapshot(),
        elapsed,
    )
}

/// [`run_scenario`] under the deterministic simulator: one call builds a
/// seeded [`SimRuntime`], wires the engine to it, and runs population,
/// fault plan and every closed-loop client as cooperative tasks in virtual
/// time. The same `(scenario, engine, seed)` triple replays the run
/// bit-identically — [`ScenarioOutcome::summary`] and the recorded history
/// are deterministic functions of the inputs.
///
/// Differences from the threaded runner:
///
/// * no stuck-run watchdog: a wedged run is caught by the simulator's own
///   deadlock detector (panic with a parked-task report) instead of a
///   wall-clock stall timeout;
/// * [`ScenarioOutcome::elapsed`] is *virtual* time, not wall time;
/// * history timestamps are virtual instants, so checker verdicts are
///   reproducible.
///
/// # Errors
///
/// Returns the [`SpecError`] if the scenario's workload spec is invalid.
pub fn run_scenario_sim(
    kind: EngineKind,
    scenario: &ChaosScenario,
    seed: u64,
) -> Result<ScenarioOutcome, SpecError> {
    run_scenario_sim_with_tuning(kind, scenario, EngineTuning::default(), seed)
}

/// [`run_scenario_sim`] with explicit engine tuning.
///
/// # Errors
///
/// Returns the [`SpecError`] if the scenario's workload spec is invalid.
pub fn run_scenario_sim_with_tuning(
    kind: EngineKind,
    scenario: &ChaosScenario,
    tuning: EngineTuning,
    seed: u64,
) -> Result<ScenarioOutcome, SpecError> {
    scenario.spec.validate()?;
    let sim = SimRuntime::new(seed);
    let handle = sim.handle();
    let injector = FaultInjector::new(scenario.faults.clone());
    let engine: Arc<Box<dyn TransactionEngine>> = Arc::new(kind.build_tuned_on(
        scenario.spec.nodes,
        scenario.replication.min(scenario.spec.nodes),
        scenario.profile,
        tuning,
        Some(&injector),
        Some(&handle),
    ));
    let outcome = run_scenario_sim_on(&sim, &engine, &injector, scenario);
    injector.disarm();
    sim.wait_quiescent();
    Ok(outcome)
}

/// [`run_scenario_sim`] against an already-built engine wired to `sim`
/// (see [`EngineKind::build_tuned_on`]); `injector` is armed at the first
/// quiescent point after population.
pub fn run_scenario_sim_on(
    sim: &Arc<SimRuntime>,
    engine: &Arc<Box<dyn TransactionEngine>>,
    injector: &Arc<FaultInjector>,
    scenario: &ChaosScenario,
) -> ScenarioOutcome {
    let spec = &scenario.spec;
    assert_eq!(
        engine.nodes(),
        spec.nodes,
        "scenario spec and engine disagree on the node count"
    );

    let recorder = Arc::new(HistoryRecorder::new());
    // Population runs as the first foreground task: message delivery and
    // protocol waits already move in virtual time, but no fault windows are
    // active yet (the plan is armed below, exactly like the threaded
    // runner arms it after population).
    {
        let engine = Arc::clone(engine);
        let recorder = Arc::clone(&recorder);
        let spec = spec.clone();
        sim.block_on("populate", move || {
            populate_recorded(engine.as_ref().as_ref(), &spec, &recorder);
        });
    }
    // Freeze at quiescence: the virtual arm time is then a deterministic
    // function of the population run, so the plan's windows hit the same
    // virtual instants on every replay — and the hold keeps the armed
    // windows from firing (free-running the clock) while this host thread
    // is still spawning the client driver below, which would make the
    // spawn's position in the schedule a wall-clock race.
    sim.freeze();
    injector.arm();

    let virtual_start = sim.virtual_elapsed();
    let progress = Arc::new(AtomicU64::new(0));
    let abort = Arc::new(AtomicBool::new(false));
    let tallies: Arc<Mutex<Vec<ClientTally>>> = Arc::new(Mutex::new(Vec::new()));

    // One driver task spawns every client as its own foreground task and
    // parks until all of them have finished. Spawning from *inside* the
    // simulation (rather than from the host thread) keeps the spawn order
    // — and therefore the scheduler's seeded interleaving — deterministic.
    {
        let engine = Arc::clone(engine);
        let scenario = scenario.clone();
        let progress = Arc::clone(&progress);
        let abort = Arc::clone(&abort);
        let recorder = Arc::clone(&recorder);
        let tallies = Arc::clone(&tallies);
        sim.block_on("clients", move || {
            let scheduler = runtime::current().expect("driver runs on a simulation task");
            let total = scenario.spec.total_clients();
            let remaining = Arc::new(AtomicU64::new(total as u64));
            for node in 0..scenario.spec.nodes {
                for client in 0..scenario.spec.clients_per_node {
                    let engine = Arc::clone(&engine);
                    let scenario = scenario.clone();
                    let progress = Arc::clone(&progress);
                    let abort = Arc::clone(&abort);
                    let recorder = Arc::clone(&recorder);
                    let tallies = Arc::clone(&tallies);
                    let remaining = Arc::clone(&remaining);
                    scheduler.spawn_task(
                        format!("client-{node}-{client}"),
                        false,
                        Box::new(move || {
                            let tally = run_client(
                                engine.as_ref().as_ref(),
                                &scenario,
                                node,
                                client,
                                &progress,
                                &abort,
                                &recorder,
                            );
                            tallies.lock().push(tally);
                            remaining.fetch_sub(1, Ordering::SeqCst);
                            if let Some(scheduler) = runtime::current() {
                                scheduler.wake();
                            }
                        }),
                    );
                }
            }
            while remaining.load(Ordering::SeqCst) > 0 {
                scheduler.park(None);
            }
        });
    }
    sim.wait_quiescent();
    let elapsed = sim.virtual_elapsed() - virtual_start;

    let tallies = std::mem::take(&mut *tallies.lock());
    finish_outcome(
        engine.name(),
        scenario,
        tallies,
        false,
        None,
        None,
        recorder.snapshot(),
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec::new(2)
            .clients_per_node(2)
            .total_keys(32)
            .read_only_percent(50)
            .seed(11)
    }

    #[test]
    fn fault_free_scenario_passes_all_expectations() {
        let scenario = ChaosScenario::new("control", tiny_spec()).ops_per_client(10);
        let outcome = run_scenario(EngineKind::Sss, &scenario).expect("valid spec");
        assert!(outcome.passed(), "violations: {:?}", outcome.violations);
        assert_eq!(outcome.committed, scenario.expected_total());
        assert_eq!(outcome.read_only_aborts, 0);
        assert_eq!(outcome.consistency, Some(Ok(())));
        assert!(outcome.history.len() as u64 > outcome.committed);
        assert!(outcome.summary().contains("consistency=ok"));
    }

    #[test]
    fn invalid_spec_is_rejected_with_a_typed_error() {
        let scenario = ChaosScenario::new("broken", tiny_spec().total_keys(0));
        assert_eq!(
            run_scenario(EngineKind::Sss, &scenario).unwrap_err(),
            SpecError::ZeroKeys
        );
    }

    #[test]
    fn sim_scenario_passes_and_replays_bit_identically() {
        let scenario = ChaosScenario::new("sim-control", tiny_spec()).ops_per_client(5);
        let a = run_scenario_sim(EngineKind::Sss, &scenario, 42).expect("valid spec");
        assert!(a.passed(), "violations: {:?}", a.violations);
        assert_eq!(a.committed, scenario.expected_total());
        let b = run_scenario_sim(EngineKind::Sss, &scenario, 42).expect("valid spec");
        assert_eq!(a.summary(), b.summary());
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same seed must replay the full history bit-identically"
        );
    }

    #[test]
    fn encoded_writers_round_trip() {
        let id = TxnId::new(NodeId(3), 17);
        assert_eq!(decode_writer(&encode_writer(id, 4)), Some(id));
        assert_eq!(decode_writer(&Value::from_u64(12)), None);
    }
}
