//! Key-access pattern generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sss_storage::{Key, ReplicaMap, Value};
use sss_vclock::NodeId;

use crate::spec::{KeySelection, WorkloadSpec};

/// One generated transaction to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnTemplate {
    /// An update transaction: read every key, then overwrite each of them.
    Update {
        /// Keys to read and rewrite.
        keys: Vec<Key>,
        /// Values to write (same length as `keys`).
        values: Vec<Value>,
    },
    /// A read-only transaction over the given keys.
    ReadOnly {
        /// Keys to read.
        keys: Vec<Key>,
    },
}

impl TxnTemplate {
    /// `true` if this template is read-only.
    pub fn is_read_only(&self) -> bool {
        matches!(self, TxnTemplate::ReadOnly { .. })
    }

    /// Keys accessed by the template.
    pub fn keys(&self) -> &[Key] {
        match self {
            TxnTemplate::Update { keys, .. } | TxnTemplate::ReadOnly { keys } => keys,
        }
    }
}

/// Per-client deterministic generator of [`TxnTemplate`]s.
///
/// The generator reproduces the paper's YCSB configuration: a fixed
/// read-only percentage, fixed access counts per profile, uniformly random
/// key choice (optionally biased towards keys whose primary replica is the
/// client's node), and distinct keys within a single transaction.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
    node: NodeId,
    spec: WorkloadSpec,
    local_keys: Vec<u64>,
    counter: u64,
}

impl WorkloadGenerator {
    /// Creates the generator for client `client_index` colocated with
    /// `node`. Each client derives an independent random stream from the
    /// spec's base seed.
    pub fn new(spec: &WorkloadSpec, node: NodeId, client_index: usize) -> Self {
        let seed = spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((node.index() as u64) << 32)
            .wrapping_add(client_index as u64);
        let local_keys = match spec.key_selection {
            KeySelection::Uniform => Vec::new(),
            KeySelection::Local { .. } => {
                let placement = ReplicaMap::new(spec.nodes, 1);
                (0..spec.total_keys as u64)
                    .filter(|k| placement.primary(&Self::key_name(*k)) == node)
                    .collect()
            }
        };
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            node,
            spec: spec.clone(),
            local_keys,
            counter: 0,
        }
    }

    fn key_name(index: u64) -> Key {
        Key::new(format!("key-{index}"))
    }

    fn pick_key(&mut self) -> Key {
        let index = match self.spec.key_selection {
            KeySelection::Uniform => self.rng.gen_range(0..self.spec.total_keys as u64),
            KeySelection::Local {
                local_fraction_percent,
            } => {
                let local = !self.local_keys.is_empty()
                    && self.rng.gen_range(0..100u8) < local_fraction_percent;
                if local {
                    self.local_keys[self.rng.gen_range(0..self.local_keys.len())]
                } else {
                    self.rng.gen_range(0..self.spec.total_keys as u64)
                }
            }
        };
        Self::key_name(index)
    }

    fn pick_distinct_keys(&mut self, count: usize) -> Vec<Key> {
        let count = count.min(self.spec.total_keys);
        let mut keys: Vec<Key> = Vec::with_capacity(count);
        while keys.len() < count {
            let key = self.pick_key();
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys
    }

    /// Generates the next transaction for this client.
    pub fn next_txn(&mut self) -> TxnTemplate {
        self.counter += 1;
        let read_only = self.rng.gen_range(0..100u8) < self.spec.read_only_percent;
        if read_only {
            TxnTemplate::ReadOnly {
                keys: self.pick_distinct_keys(self.spec.read_only_access_count),
            }
        } else {
            let keys = self.pick_distinct_keys(self.spec.update_access_count);
            let values = keys
                .iter()
                .map(|_| {
                    Value::from_u64(
                        (self.node.index() as u64) << 48
                            | self.counter << 16
                            | self.rng.gen_range(0..0xFFFF),
                    )
                })
                .collect();
            TxnTemplate::Update { keys, values }
        }
    }

    /// The node this generator's client is colocated with.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Name of every key in the key space, for pre-population.
    pub fn all_keys(spec: &WorkloadSpec) -> impl Iterator<Item = Key> + '_ {
        (0..spec.total_keys as u64).map(Self::key_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(4)
            .total_keys(50)
            .duration(Duration::from_millis(1))
    }

    #[test]
    fn generator_is_deterministic_per_client() {
        let spec = spec();
        let mut a = WorkloadGenerator::new(&spec, NodeId(1), 3);
        let mut b = WorkloadGenerator::new(&spec, NodeId(1), 3);
        for _ in 0..50 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
        assert_eq!(a.node(), NodeId(1));
    }

    #[test]
    fn different_clients_get_different_streams() {
        let spec = spec();
        let mut a = WorkloadGenerator::new(&spec, NodeId(0), 0);
        let mut b = WorkloadGenerator::new(&spec, NodeId(0), 1);
        let same = (0..20).filter(|_| a.next_txn() == b.next_txn()).count();
        assert!(same < 20, "independent clients produced identical streams");
    }

    #[test]
    fn read_only_percentage_is_respected() {
        let spec = spec().read_only_percent(80);
        let mut g = WorkloadGenerator::new(&spec, NodeId(0), 0);
        let total = 2000;
        let ro = (0..total).filter(|_| g.next_txn().is_read_only()).count();
        let pct = ro as f64 / total as f64 * 100.0;
        assert!((70.0..90.0).contains(&pct), "read-only share {pct}%");
    }

    #[test]
    fn update_transactions_access_distinct_keys() {
        let spec = spec().read_only_percent(0).update_access_count(4);
        let mut g = WorkloadGenerator::new(&spec, NodeId(0), 0);
        for _ in 0..100 {
            let txn = g.next_txn();
            let keys = txn.keys();
            let mut dedup = keys.to_vec();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), keys.len());
            if let TxnTemplate::Update { keys, values } = &txn {
                assert_eq!(keys.len(), values.len());
            }
        }
    }

    #[test]
    fn locality_biases_towards_local_keys() {
        let spec = WorkloadSpec::new(4)
            .total_keys(400)
            .read_only_percent(100)
            .key_selection(KeySelection::Local {
                local_fraction_percent: 100,
            });
        let placement = ReplicaMap::new(4, 1);
        let mut g = WorkloadGenerator::new(&spec, NodeId(2), 0);
        let mut local = 0;
        let mut total = 0;
        for _ in 0..100 {
            for key in g.next_txn().keys() {
                total += 1;
                if placement.primary(key) == NodeId(2) {
                    local += 1;
                }
            }
        }
        assert!(local as f64 / total as f64 > 0.95);
    }

    #[test]
    fn all_keys_enumerates_the_key_space() {
        let spec = spec().total_keys(10);
        assert_eq!(WorkloadGenerator::all_keys(&spec).count(), 10);
    }
}
