//! Benchmark result aggregation.

use std::time::Duration;

/// Latency percentiles of committed transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Average latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 99th percentile latency.
    pub p99: Duration,
    /// Maximum observed latency.
    pub max: Duration,
}

impl LatencySummary {
    /// Computes a summary from raw samples. Returns the zero summary for an
    /// empty sample set.
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort();
        let total: Duration = samples.iter().sum();
        let pick = |q: f64| {
            let idx = ((samples.len() as f64 - 1.0) * q).floor() as usize;
            samples[idx.min(samples.len() - 1)]
        };
        LatencySummary {
            mean: total / samples.len() as u32,
            p50: pick(0.50),
            p99: pick(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Aggregated results of one workload run (or the average of several trials).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadReport {
    /// Engine name.
    pub engine: String,
    /// Committed transactions.
    pub committed: u64,
    /// Committed read-only transactions (subset of `committed`).
    pub committed_read_only: u64,
    /// Aborted transaction attempts.
    pub aborted: u64,
    /// Wall-clock duration of the measured window.
    pub elapsed: Duration,
    /// Latency of committed transactions (begin to client-visible return).
    pub latency: LatencySummary,
    /// Latency of committed *update* transactions only.
    pub update_latency: LatencySummary,
    /// Internal-commit latency of committed update transactions (for SSS the
    /// part before the snapshot-queue wait; equal to `update_latency` for
    /// the other engines).
    pub internal_latency: LatencySummary,
}

impl WorkloadReport {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Committed transactions per second, in thousands (the unit of every
    /// throughput figure in the paper).
    pub fn throughput_ktps(&self) -> f64 {
        self.throughput() / 1_000.0
    }

    /// Abort rate over all attempts (0.0 - 1.0).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Average time committed update transactions spent between internal and
    /// external commit (the snapshot-queue wait of Figure 5). Zero for
    /// engines without the distinction.
    pub fn mean_pre_commit_wait(&self) -> Duration {
        self.update_latency
            .mean
            .saturating_sub(self.internal_latency.mean)
    }

    /// Averages several per-trial reports into one (the paper reports the
    /// average of 5 trials).
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn average(reports: &[WorkloadReport]) -> WorkloadReport {
        assert!(!reports.is_empty(), "cannot average zero reports");
        let n = reports.len() as u64;
        let avg_duration = |f: &dyn Fn(&WorkloadReport) -> Duration| {
            reports.iter().map(f).sum::<Duration>() / n as u32
        };
        WorkloadReport {
            engine: reports[0].engine.clone(),
            committed: reports.iter().map(|r| r.committed).sum::<u64>() / n,
            committed_read_only: reports.iter().map(|r| r.committed_read_only).sum::<u64>() / n,
            aborted: reports.iter().map(|r| r.aborted).sum::<u64>() / n,
            elapsed: avg_duration(&|r| r.elapsed),
            latency: LatencySummary {
                mean: avg_duration(&|r| r.latency.mean),
                p50: avg_duration(&|r| r.latency.p50),
                p99: avg_duration(&|r| r.latency.p99),
                max: avg_duration(&|r| r.latency.max),
            },
            update_latency: LatencySummary {
                mean: avg_duration(&|r| r.update_latency.mean),
                p50: avg_duration(&|r| r.update_latency.p50),
                p99: avg_duration(&|r| r.update_latency.p99),
                max: avg_duration(&|r| r.update_latency.max),
            },
            internal_latency: LatencySummary {
                mean: avg_duration(&|r| r.internal_latency.mean),
                p50: avg_duration(&|r| r.internal_latency.p50),
                p99: avg_duration(&|r| r.internal_latency.p99),
                max: avg_duration(&|r| r.internal_latency.max),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let summary = LatencySummary::from_samples(samples);
        assert_eq!(summary.p50, Duration::from_millis(50));
        assert_eq!(summary.p99, Duration::from_millis(99));
        assert_eq!(summary.max, Duration::from_millis(100));
        assert!(
            summary.mean > Duration::from_millis(49) && summary.mean < Duration::from_millis(52)
        );
        assert_eq!(
            LatencySummary::from_samples(Vec::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn throughput_and_abort_rate() {
        let report = WorkloadReport {
            engine: "SSS".into(),
            committed: 10_000,
            committed_read_only: 5_000,
            aborted: 1_000,
            elapsed: Duration::from_secs(2),
            ..Default::default()
        };
        assert!((report.throughput() - 5_000.0).abs() < 1e-9);
        assert!((report.throughput_ktps() - 5.0).abs() < 1e-9);
        assert!((report.abort_rate() - 1_000.0 / 11_000.0).abs() < 1e-9);
        assert_eq!(WorkloadReport::default().throughput(), 0.0);
        assert_eq!(WorkloadReport::default().abort_rate(), 0.0);
    }

    #[test]
    fn averaging_trials() {
        let mk = |committed: u64| WorkloadReport {
            engine: "X".into(),
            committed,
            aborted: 10,
            elapsed: Duration::from_secs(1),
            ..Default::default()
        };
        let avg = WorkloadReport::average(&[mk(100), mk(300)]);
        assert_eq!(avg.committed, 200);
        assert_eq!(avg.aborted, 10);
        assert_eq!(avg.engine, "X");
    }

    #[test]
    fn pre_commit_wait_derivation() {
        let report = WorkloadReport {
            update_latency: LatencySummary {
                mean: Duration::from_millis(10),
                ..Default::default()
            },
            internal_latency: LatencySummary {
                mean: Duration::from_millis(7),
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(report.mean_pre_commit_wait(), Duration::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn averaging_nothing_panics() {
        let _ = WorkloadReport::average(&[]);
    }
}
