//! YCSB-style workload generation and closed-loop benchmark driving.
//!
//! The paper's evaluation (§V) uses YCSB ported to a key-value store with
//! two transaction profiles: *update* transactions that read and write two
//! keys, and *read-only* transactions that read two or more keys. Clients
//! are colocated with processing nodes, issue transactions in a closed loop
//! (a client only issues a new request when the previous one returned), keys
//! are chosen uniformly at random (optionally with a local-access bias), and
//! every reported number is the average of several trials.
//!
//! This crate reproduces that methodology in an engine-agnostic way:
//!
//! * [`WorkloadSpec`] describes the mix (read-only percentage, transaction
//!   sizes, key count, locality, clients per node, duration),
//! * [`WorkloadGenerator`] produces the per-client operation stream,
//! * the driver runs against the engine layer's
//!   [`TransactionEngine`] / [`EngineSession`] traits (owned by the
//!   `sss-engine` crate, whose `EngineKind` registry builds every engine),
//! * [`populate`] pre-loads the key space and [`run_workload`] drives the
//!   closed loop, collecting a [`WorkloadReport`] (throughput, abort rate,
//!   latency percentiles, and the internal/external commit latency split
//!   used by Figure 5).

mod driver;
mod generator;
mod report;
mod spec;

pub use driver::{populate, run_trials, run_workload};
pub use generator::{TxnTemplate, WorkloadGenerator};
pub use report::{LatencySummary, WorkloadReport};
pub use spec::{KeySelection, WorkloadSpec};

pub use sss_engine::{EngineSession, TransactionEngine, TxnOutcome};
pub use sss_storage::{Key, Value};
