//! YCSB-style workload generation and closed-loop benchmark driving.
//!
//! The paper's evaluation (§V) uses YCSB ported to a key-value store with
//! two transaction profiles: *update* transactions that read and write two
//! keys, and *read-only* transactions that read two or more keys. Clients
//! are colocated with processing nodes, issue transactions in a closed loop
//! (a client only issues a new request when the previous one returned), keys
//! are chosen uniformly at random (optionally with a local-access bias), and
//! every reported number is the average of several trials.
//!
//! This crate reproduces that methodology in an engine-agnostic way:
//!
//! * [`WorkloadSpec`] describes the mix (read-only percentage, transaction
//!   sizes, key count, locality, clients per node, duration),
//! * [`WorkloadGenerator`] produces the per-client operation stream,
//! * the driver runs against the engine layer's
//!   [`TransactionEngine`] / [`EngineSession`] traits (owned by the
//!   `sss-engine` crate, whose `EngineKind` registry builds every engine),
//! * [`populate`] pre-loads the key space and [`run_workload`] drives the
//!   closed loop, collecting a [`WorkloadReport`] (throughput, abort rate,
//!   latency percentiles, and the internal/external commit latency split
//!   used by Figure 5).

//! ## Chaos scenarios
//!
//! Beyond the throughput-oriented driver, the [`scenario`] layer runs
//! *chaos scenarios*: a [`ChaosScenario`] pairs a [`WorkloadSpec`] with an
//! `sss-faults` fault plan and expected-outcome assertions, executes a
//! fixed-operation closed loop with history recording and a stuck-run
//! detector, and verifies the run with the `sss-consistency` checker. See
//! [`run_scenario`].

mod driver;
mod generator;
mod report;
pub mod scenario;
mod spec;

pub use driver::{populate, run_trials, run_workload};
pub use generator::{TxnTemplate, WorkloadGenerator};
pub use report::{LatencySummary, WorkloadReport};
pub use scenario::{
    run_scenario, run_scenario_on, run_scenario_sim, run_scenario_sim_on,
    run_scenario_sim_with_tuning, run_scenario_with_tuning, ChaosScenario, ScenarioExpectations,
    ScenarioOutcome,
};
pub use spec::{KeySelection, SpecError, WorkloadSpec};

pub use sss_engine::{EngineKind, EngineSession, EngineTuning, TransactionEngine, TxnOutcome};
pub use sss_faults::{FaultPlan, LinkFault, LinkSelector};
pub use sss_storage::{Key, Value};
pub use sss_vclock::NodeId;
