//! Closed-loop benchmark driver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sss_engine::{TransactionEngine, TxnOutcome};
use sss_storage::{Key, Value};
use sss_vclock::NodeId;

use crate::generator::{TxnTemplate, WorkloadGenerator};
use crate::report::{LatencySummary, WorkloadReport};
use crate::spec::WorkloadSpec;

/// Pre-populates every key of the workload's key space with an initial
/// value, as YCSB does before the measured phase.
pub fn populate<E: TransactionEngine + ?Sized>(engine: &E, spec: &WorkloadSpec) {
    let mut session = engine.session(0);
    let keys: Vec<Key> = WorkloadGenerator::all_keys(spec).collect();
    for chunk in keys.chunks(64) {
        let writes: Vec<(Key, Value)> = chunk
            .iter()
            .map(|k| (k.clone(), Value::from_u64(0)))
            .collect();
        // Population runs before the measured window; an abort here can only
        // come from self-contention, so retry until applied.
        for _ in 0..16 {
            if session.run_update(&[], &writes).is_committed() {
                break;
            }
        }
    }
}

/// Raw measurements of one client thread.
#[derive(Debug, Default)]
struct ClientTally {
    committed: u64,
    committed_read_only: u64,
    aborted: u64,
    latencies: Vec<Duration>,
    update_latencies: Vec<Duration>,
    internal_latencies: Vec<Duration>,
}

/// Runs one trial of `spec` against `engine` and collects a report.
///
/// The driver spawns `spec.clients_per_node` threads per node; every client
/// runs a closed loop ("a client issues a new request only when the previous
/// one has returned", paper §V): generate a transaction, execute it, record
/// the outcome, repeat until the trial duration elapses. Aborted update
/// transactions are counted and the client simply moves on to the next
/// generated transaction, matching the benchmark behaviour used in the
/// paper's abort-rate reporting.
pub fn run_workload<E: TransactionEngine + ?Sized>(
    engine: &E,
    spec: &WorkloadSpec,
) -> WorkloadReport {
    if let Err(error) = spec.validate() {
        panic!("invalid workload spec: {error}");
    }
    assert_eq!(
        engine.nodes(),
        spec.nodes,
        "workload spec and engine disagree on the node count"
    );
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for node in 0..spec.nodes {
            for client in 0..spec.clients_per_node {
                let stop = Arc::clone(&stop);
                let spec_ref = spec;
                let engine_ref = engine;
                handles.push(scope.spawn(move || {
                    let mut generator = WorkloadGenerator::new(spec_ref, NodeId(node), client);
                    let mut session = engine_ref.session(node);
                    let mut tally = ClientTally::default();
                    while !stop.load(Ordering::Relaxed) {
                        let template = generator.next_txn();
                        let outcome = match &template {
                            TxnTemplate::ReadOnly { keys } => session.run_read_only(keys),
                            TxnTemplate::Update { keys, values } => {
                                let writes: Vec<_> =
                                    keys.iter().cloned().zip(values.iter().cloned()).collect();
                                session.run_update(keys, &writes)
                            }
                        };
                        match outcome {
                            TxnOutcome::Committed {
                                latency,
                                internal_latency,
                            } => {
                                tally.committed += 1;
                                tally.latencies.push(latency);
                                if template.is_read_only() {
                                    tally.committed_read_only += 1;
                                } else {
                                    tally.update_latencies.push(latency);
                                    tally.internal_latencies.push(internal_latency);
                                }
                            }
                            TxnOutcome::Aborted => tally.aborted += 1,
                        }
                    }
                    tally
                }));
            }
        }

        // Timer thread: flip the stop flag when the trial window closes.
        let stop_timer = Arc::clone(&stop);
        let duration = spec.duration;
        scope.spawn(move || {
            std::thread::sleep(duration);
            stop_timer.store(true, Ordering::Relaxed);
        });

        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let elapsed = start.elapsed();
    let mut committed = 0;
    let mut committed_read_only = 0;
    let mut aborted = 0;
    let mut latencies = Vec::new();
    let mut update_latencies = Vec::new();
    let mut internal_latencies = Vec::new();
    for tally in tallies {
        committed += tally.committed;
        committed_read_only += tally.committed_read_only;
        aborted += tally.aborted;
        latencies.extend(tally.latencies);
        update_latencies.extend(tally.update_latencies);
        internal_latencies.extend(tally.internal_latencies);
    }

    WorkloadReport {
        engine: engine.name().to_string(),
        committed,
        committed_read_only,
        aborted,
        elapsed,
        latency: LatencySummary::from_samples(latencies),
        update_latency: LatencySummary::from_samples(update_latencies),
        internal_latency: LatencySummary::from_samples(internal_latencies),
    }
}

/// Runs `spec.trials` trials and returns the averaged report (the paper
/// reports the average of 5 trials per data point).
pub fn run_trials<E: TransactionEngine + ?Sized>(
    engine: &E,
    spec: &WorkloadSpec,
) -> WorkloadReport {
    let trials = spec.trials.max(1);
    let reports: Vec<WorkloadReport> = (0..trials)
        .map(|trial| {
            let mut trial_spec = spec.clone();
            trial_spec.seed = spec.seed.wrapping_add(trial as u64);
            run_workload(engine, &trial_spec)
        })
        .collect();
    WorkloadReport::average(&reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sss_engine::EngineSession;
    use std::collections::HashMap;

    /// A trivially serializable single-node in-memory engine used to test
    /// the driver itself.
    struct ToyEngine {
        nodes: usize,
        data: Arc<Mutex<HashMap<Key, Value>>>,
    }

    struct ToySession {
        data: Arc<Mutex<HashMap<Key, Value>>>,
    }

    impl EngineSession for ToySession {
        fn run_update(&mut self, read_keys: &[Key], writes: &[(Key, Value)]) -> TxnOutcome {
            let start = Instant::now();
            let mut data = self.data.lock();
            for k in read_keys {
                let _ = data.get(k);
            }
            for (k, v) in writes {
                data.insert(k.clone(), v.clone());
            }
            TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            }
        }

        fn run_read_only(&mut self, read_keys: &[Key]) -> TxnOutcome {
            let start = Instant::now();
            let data = self.data.lock();
            for k in read_keys {
                let _ = data.get(k);
            }
            TxnOutcome::Committed {
                latency: start.elapsed(),
                internal_latency: start.elapsed(),
            }
        }
    }

    impl TransactionEngine for ToyEngine {
        fn name(&self) -> &str {
            "toy"
        }

        fn nodes(&self) -> usize {
            self.nodes
        }

        fn session(&self, _node: usize) -> Box<dyn EngineSession> {
            Box::new(ToySession {
                data: Arc::clone(&self.data),
            })
        }
    }

    #[test]
    fn driver_collects_throughput_and_latency() {
        let engine = ToyEngine {
            nodes: 2,
            data: Arc::new(Mutex::new(HashMap::new())),
        };
        let spec = WorkloadSpec::new(2)
            .clients_per_node(2)
            .total_keys(20)
            .read_only_percent(50)
            .duration(Duration::from_millis(30));
        let report = run_workload(&engine, &spec);
        assert_eq!(report.engine, "toy");
        assert!(report.committed > 0);
        assert_eq!(report.aborted, 0);
        assert!(report.throughput() > 0.0);
        assert!(report.latency.max >= report.latency.p50);
        assert!(report.committed_read_only <= report.committed);
    }

    #[test]
    fn trials_are_averaged() {
        let engine = ToyEngine {
            nodes: 1,
            data: Arc::new(Mutex::new(HashMap::new())),
        };
        let spec = WorkloadSpec::new(1)
            .clients_per_node(1)
            .total_keys(10)
            .duration(Duration::from_millis(10))
            .trials(2);
        let report = run_trials(&engine, &spec);
        assert!(report.committed > 0);
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn node_count_mismatch_is_rejected() {
        let engine = ToyEngine {
            nodes: 1,
            data: Arc::new(Mutex::new(HashMap::new())),
        };
        let spec = WorkloadSpec::new(3);
        let _ = run_workload(&engine, &spec);
    }
}
