//! Schedule-enumerating interleaving tests for three concurrency hot spots.
//!
//! Each test drives `explore_schedules` over the *production* type — no
//! modelling layer — enumerating every interleaving of short per-thread step
//! lists and re-executing each complete schedule from a fresh state:
//!
//! * `MvStore`: a copy-on-write version install racing a reader that took a
//!   chain snapshot handle — the handle must be frozen and the live store
//!   monotonic in every schedule;
//! * `Mailbox`: batched producers racing a consumer and a close — no message
//!   may be lost or duplicated in any schedule, and the counters must
//!   conserve;
//! * `CoalescerCore`: confirmation-round leadership racing late enqueues —
//!   exactly one leader at a time, and queued work is never stranded behind
//!   a leader's exit (the "no lost wakeup" obligation of the coalescer's
//!   critical section).

use std::sync::Arc;

use sss_core::{CoalescerCore, RoundPlan, TxnId};
use sss_model::interleave::{explore_schedules, Step};
use sss_net::{Mailbox, MailboxStats, Priority};
use sss_storage::{Key, MvStore, Value, VersionChain};
use sss_vclock::{NodeId, VectorClock};

fn vc0(width: usize, v: u64) -> VectorClock {
    let mut c = VectorClock::new(width);
    c.set(0, v);
    c
}

fn txn(seq: u64) -> TxnId {
    TxnId::new(NodeId(0), seq)
}

// ---------------------------------------------------------------------------
// Hot spot 1: MvStore copy-on-write install vs. chain walk.
// ---------------------------------------------------------------------------

struct StoreState {
    store: MvStore,
    /// The snapshot handle the reader grabbed, if it has run yet.
    handle: Option<Arc<VersionChain>>,
    /// `(len, newest vc[0])` observed at grab time.
    observed: Option<(usize, u64)>,
}

/// A reader that takes a `chain()` snapshot handle must see a frozen chain —
/// concurrent `apply` calls swap the shard's `Arc` without mutating the
/// handle already returned — while the live store only moves forward.
#[test]
fn mvstore_snapshot_handle_is_frozen_under_concurrent_installs() {
    let key = Key::new("k");
    let init = || {
        let store = MvStore::with_shards(2);
        store.apply(key.clone(), Value::from_u64(1), vc0(2, 1), txn(1));
        StoreState {
            store,
            handle: None,
            observed: None,
        }
    };

    let writer: Vec<Step<'_, StoreState>> = vec![
        Box::new(|s: &mut StoreState| {
            s.store
                .apply(Key::new("k"), Value::from_u64(2), vc0(2, 2), txn(2));
            Ok(())
        }),
        Box::new(|s: &mut StoreState| {
            s.store
                .apply(Key::new("k"), Value::from_u64(3), vc0(2, 3), txn(3));
            Ok(())
        }),
    ];
    let reader: Vec<Step<'_, StoreState>> = vec![
        // Grab the snapshot handle and record what it shows.
        Box::new(|s: &mut StoreState| {
            let chain = s
                .store
                .chain(&Key::new("k"))
                .ok_or("seeded key has no chain")?;
            let last = chain.last().ok_or("seeded chain is empty")?;
            s.observed = Some((chain.len(), last.vc.get(0)));
            s.handle = Some(chain);
            Ok(())
        }),
        // Re-walk the *same* handle: it must be byte-for-byte stable no
        // matter how many installs landed in between, and the live store
        // must have advanced monotonically past it.
        Box::new(|s: &mut StoreState| {
            let chain = s.handle.as_ref().expect("reader step order");
            let (len, newest) = s.observed.expect("reader step order");
            if chain.len() != len {
                return Err(format!(
                    "snapshot handle grew from {len} to {} versions",
                    chain.len()
                ));
            }
            let last = chain.last().expect("non-empty at grab time");
            if last.vc.get(0) != newest {
                return Err(format!(
                    "snapshot handle's newest version moved: {newest} -> {}",
                    last.vc.get(0)
                ));
            }
            let live = s.store.last_vc_entry(&Key::new("k"), 0);
            if live < newest {
                return Err(format!(
                    "live store regressed below the snapshot: {live} < {newest}"
                ));
            }
            Ok(())
        }),
    ];

    let outcome = explore_schedules(init, &[writer, reader], |s| {
        // Every schedule ends with all three versions installed, in install
        // order, with monotonically increasing vector clocks.
        let chain = s.store.chain(&Key::new("k")).ok_or("chain vanished")?;
        if chain.len() != 3 {
            return Err(format!("lost an install: {} versions", chain.len()));
        }
        let mut prev = 0;
        for v in chain.iter() {
            let at = v.vc.get(0);
            if at <= prev && prev != 0 {
                return Err(format!("chain not monotonic: {prev} then {at}"));
            }
            prev = at;
        }
        Ok(())
    });
    assert!(outcome.ok(), "{:?}", outcome.failure);
    assert_eq!(outcome.schedules, 6, "2+2 steps enumerate C(4,2) schedules");
}

// ---------------------------------------------------------------------------
// Hot spot 2: Mailbox batched push / batched pop / close.
// ---------------------------------------------------------------------------

struct MailState {
    mb: Mailbox<u64>,
    start: MailboxStats,
    /// Messages whose push was accepted (push/push_batch returned `true`).
    accepted: Vec<u64>,
    /// Messages popped during the schedule.
    popped: Vec<u64>,
}

/// Every message whose push was accepted is delivered exactly once, in every
/// interleaving of `push_batch`, `push`, `try_pop`, and `close` — and the
/// mailbox counters conserve across the whole schedule.
#[test]
fn mailbox_conserves_messages_across_batch_and_close_races() {
    let init = || {
        let mb = Mailbox::new();
        let start = mb.stats();
        MailState {
            mb,
            start,
            accepted: Vec::new(),
            popped: Vec::new(),
        }
    };

    let producer: Vec<Step<'_, MailState>> = vec![
        Box::new(|s: &mut MailState| {
            // Batch acceptance is all-or-nothing: a closed mailbox drops the
            // whole batch and reports it.
            if s.mb.push_batch([1, 2, 3], Priority::Normal) {
                s.accepted.extend([1, 2, 3]);
            }
            Ok(())
        }),
        Box::new(|s: &mut MailState| {
            if s.mb.push(4, Priority::High) {
                s.accepted.push(4);
            }
            Ok(())
        }),
    ];
    let consumer: Vec<Step<'_, MailState>> = vec![
        Box::new(|s: &mut MailState| {
            if let Some(m) = s.mb.try_pop() {
                s.popped.push(m);
            }
            Ok(())
        }),
        Box::new(|s: &mut MailState| {
            if let Some(m) = s.mb.try_pop() {
                s.popped.push(m);
            }
            Ok(())
        }),
    ];
    let closer: Vec<Step<'_, MailState>> = vec![Box::new(|s: &mut MailState| {
        s.mb.close();
        Ok(())
    })];

    let outcome = explore_schedules(init, &[producer, consumer, closer], |s| {
        // The closer has run in every complete schedule, so the drain below
        // cannot block: pop_batch returns 0 once closed and empty.
        let mut delivered = s.popped.clone();
        let mut out = Vec::new();
        loop {
            out.clear();
            if s.mb.pop_batch(16, &mut out) == 0 {
                break;
            }
            delivered.extend(out.iter().copied());
        }
        let mut expected = s.accepted.clone();
        expected.sort_unstable();
        delivered.sort_unstable();
        if delivered != expected {
            return Err(format!("accepted {expected:?} but delivered {delivered:?}"));
        }
        let end = s.mb.stats();
        if !end.is_coherent() {
            return Err("mailbox counters incoherent".into());
        }
        if !MailboxStats::conserves(&s.start, &end) {
            return Err("mailbox counters do not conserve".into());
        }
        if end.total_enqueued() != end.total_dequeued() {
            return Err(format!(
                "drained mailbox still unbalanced: {} enqueued, {} dequeued",
                end.total_enqueued(),
                end.total_dequeued()
            ));
        }
        Ok(())
    });
    assert!(outcome.ok(), "{:?}", outcome.failure);
    assert_eq!(outcome.schedules, 30, "2+2+1 steps enumerate 30 schedules");
}

// ---------------------------------------------------------------------------
// Hot spot 3: CoalescerCore leadership handoff.
// ---------------------------------------------------------------------------

struct CoalState {
    core: CoalescerCore<u8>,
    /// Which logical thread currently leads, if any.
    leader: Option<usize>,
    /// Members of each completed round, in round order.
    rounds: Vec<Vec<TxnId>>,
    /// Releases that found a carrier (piggybacked or flushed).
    released: Vec<TxnId>,
    /// Every transaction enqueued during the schedule.
    enqueued: Vec<TxnId>,
}

fn enqueue_step(thread: usize, seq: u64) -> Step<'static, CoalState> {
    Box::new(move |s: &mut CoalState| {
        let lead = s.core.enqueue(txn(seq), Arc::new(VectorClock::new(2)), 0);
        s.enqueued.push(txn(seq));
        if lead {
            if let Some(other) = s.leader {
                return Err(format!(
                    "t{thread} elected leader while t{other} still leads"
                ));
            }
            s.leader = Some(thread);
        }
        Ok(())
    })
}

/// One leader-loop iteration, mirroring the production
/// `run_confirm_rounds` body: a no-op unless this thread leads.
fn drive_step(thread: usize, window: usize) -> Step<'static, CoalState> {
    Box::new(move |s: &mut CoalState| {
        if s.leader != Some(thread) {
            return Ok(());
        }
        match s.core.next_round(window, false) {
            RoundPlan::Exit => s.leader = None,
            RoundPlan::Linger => return Err("lingered with may_linger=false".into()),
            RoundPlan::Flush { release, .. } => s.released.extend(release),
            RoundPlan::Round { batch, release, .. } => {
                s.released.extend(release);
                if batch.is_empty() {
                    return Err("a planned round carried no members".into());
                }
                let members: Vec<TxnId> = batch.iter().map(|p| p.txn).collect();
                s.rounds.push(members.clone());
                if let Some(now) = s.core.round_completed(members, true) {
                    s.released.extend(now);
                }
            }
        }
        Ok(())
    })
}

/// A member is never stranded: in every interleaving of two committers with
/// the leader's drive loop, either the queues drained or an active leader
/// still covers them — `in_flight` can never be false with work queued
/// (the lost-wakeup bug the coalescer's shared critical section prevents).
#[test]
fn coalescer_leadership_handoff_never_strands_a_member() {
    let t0: Vec<Step<'_, CoalState>> = vec![
        enqueue_step(0, 1),
        drive_step(0, 4),
        drive_step(0, 4),
        drive_step(0, 4),
        drive_step(0, 4),
    ];
    let t1: Vec<Step<'_, CoalState>> = vec![enqueue_step(1, 2), drive_step(1, 4), drive_step(1, 4)];

    let outcome = explore_schedules(
        || CoalState {
            core: CoalescerCore::new(),
            leader: None,
            rounds: Vec::new(),
            released: Vec::new(),
            enqueued: Vec::new(),
        },
        &[t0, t1],
        |s| {
            let leftover =
                s.core.pending_len() + s.core.pending_release_len() + s.core.pending_remove_len();
            if leftover > 0 && !s.core.in_flight() {
                return Err(format!("{leftover} queued items stranded with no leader"));
            }
            if leftover > 0 && s.leader.is_none() {
                return Err("in_flight set but no thread believes it leads".into());
            }
            // Confirmed-at-most-once, and everything enqueued is either
            // confirmed or still queued under the active leader.
            let confirmed: Vec<TxnId> = s.rounds.iter().flatten().copied().collect();
            for (i, t) in confirmed.iter().enumerate() {
                if confirmed[i + 1..].contains(t) {
                    return Err(format!("{t:?} confirmed twice"));
                }
            }
            let queued: Vec<TxnId> = s.core.pending_txns().collect();
            for t in &s.enqueued {
                if !confirmed.contains(t) && !queued.contains(t) {
                    return Err(format!("{t:?} vanished: neither confirmed nor queued"));
                }
            }
            Ok(())
        },
    );
    assert!(outcome.ok(), "{:?}", outcome.failure);
    assert_eq!(
        outcome.schedules, 56,
        "5+3 steps enumerate C(8,3) schedules"
    );
}

/// With a window of 1 (confirmation epoch = 1) the grouped coalescer
/// degenerates to the base protocol: every round carries exactly one member
/// and rounds run in arrival order, in every interleaving.
#[test]
fn coalescer_window_one_is_singleton_equivalent_in_every_schedule() {
    let t0: Vec<Step<'_, CoalState>> = vec![
        enqueue_step(0, 1),
        drive_step(0, 1),
        drive_step(0, 1),
        drive_step(0, 1),
        drive_step(0, 1),
        drive_step(0, 1),
    ];
    let t1: Vec<Step<'_, CoalState>> = vec![enqueue_step(1, 2), drive_step(1, 1), drive_step(1, 1)];

    let outcome = explore_schedules(
        || CoalState {
            core: CoalescerCore::new(),
            leader: None,
            rounds: Vec::new(),
            released: Vec::new(),
            enqueued: Vec::new(),
        },
        &[t0, t1],
        |s| {
            for members in &s.rounds {
                if members.len() != 1 {
                    return Err(format!(
                        "window-1 round carried {} members: {members:?}",
                        members.len()
                    ));
                }
            }
            // Rounds respect arrival order (the queue is drained from the
            // front): the confirmed sequence is a prefix-preserving
            // subsequence of the enqueue order.
            let confirmed: Vec<TxnId> = s.rounds.iter().flatten().copied().collect();
            let mut cursor = 0;
            for t in &s.enqueued {
                if cursor < confirmed.len() && confirmed[cursor] == *t {
                    cursor += 1;
                }
            }
            if cursor != confirmed.len() {
                return Err(format!(
                    "rounds out of arrival order: {confirmed:?} vs {:?}",
                    s.enqueued
                ));
            }
            Ok(())
        },
    );
    assert!(outcome.ok(), "{:?}", outcome.failure);
}

/// A linger decision racing a late enqueue: a leader lingering on an
/// under-full window never loses the queued member, and when the late
/// arrival lands before the window probe, the window actually fills — the
/// probe plans one grouped round carrying both.
#[test]
fn coalescer_linger_racing_enqueue_fills_the_window() {
    use std::cell::Cell;
    let saw_linger = Cell::new(false);
    let saw_grouped = Cell::new(false);

    // Thread 0's second step probes with may_linger=true and a window of 2:
    // with only its own member queued it lingers; with the late arrival
    // already queued the window is full and a grouped round runs.
    let linger_probe: Step<'_, CoalState> = Box::new(|s: &mut CoalState| {
        if s.leader != Some(0) {
            return Ok(());
        }
        match s.core.next_round(2, true) {
            RoundPlan::Linger => {
                saw_linger.set(true);
                if s.core.pending_len() == 0 {
                    return Err("linger dropped the queued member".into());
                }
                Ok(())
            }
            RoundPlan::Round { batch, release, .. } => {
                if batch.len() == 2 {
                    saw_grouped.set(true);
                }
                s.released.extend(release);
                let members: Vec<TxnId> = batch.iter().map(|p| p.txn).collect();
                s.rounds.push(members.clone());
                if let Some(now) = s.core.round_completed(members, true) {
                    s.released.extend(now);
                }
                Ok(())
            }
            // The probing leader's own member is still queued, so the core
            // can neither exit nor flush here.
            RoundPlan::Exit => Err("exited with a member queued".into()),
            RoundPlan::Flush { .. } => Err("flushed with a member queued".into()),
        }
    });
    let t0: Vec<Step<'_, CoalState>> = vec![
        enqueue_step(0, 1),
        linger_probe,
        drive_step(0, 2),
        drive_step(0, 2),
        drive_step(0, 2),
    ];
    let t1: Vec<Step<'_, CoalState>> = vec![enqueue_step(1, 2), drive_step(1, 2), drive_step(1, 2)];

    let outcome = explore_schedules(
        || CoalState {
            core: CoalescerCore::new(),
            leader: None,
            rounds: Vec::new(),
            released: Vec::new(),
            enqueued: Vec::new(),
        },
        &[t0, t1],
        |s| {
            let leftover =
                s.core.pending_len() + s.core.pending_release_len() + s.core.pending_remove_len();
            if leftover > 0 && !s.core.in_flight() {
                return Err(format!("{leftover} queued items stranded with no leader"));
            }
            let confirmed: Vec<TxnId> = s.rounds.iter().flatten().copied().collect();
            for (i, t) in confirmed.iter().enumerate() {
                if confirmed[i + 1..].contains(t) {
                    return Err(format!("{t:?} confirmed twice"));
                }
            }
            let queued: Vec<TxnId> = s.core.pending_txns().collect();
            for t in &s.enqueued {
                if !confirmed.contains(t) && !queued.contains(t) {
                    return Err(format!("{t:?} vanished: neither confirmed nor queued"));
                }
            }
            Ok(())
        },
    );
    assert!(outcome.ok(), "{:?}", outcome.failure);
    assert_eq!(
        outcome.schedules, 56,
        "5+3 steps enumerate C(8,3) schedules"
    );
    assert!(saw_linger.get(), "no schedule exercised the linger arm");
    assert!(
        saw_grouped.get(),
        "no schedule filled the window before the probe"
    );
}
