//! Exhaustive protocol checks: clean configurations must verify completely,
//! and every seeded mutation must yield a minimal replayable counterexample.
//!
//! The exhaustive runs are heavyweight in debug builds, so they are ignored
//! there and exercised in release mode by the CI `modelcheck` job (and by
//! `cargo test --release -p sss-model`).

use sss_model::{bfs_check, ChaosHints, CheckConfig, ModelConfig, Mutation, SssModel};

fn check(cfg: ModelConfig) -> sss_model::CheckReport<sss_model::sss::Action> {
    bfs_check(&SssModel::new(cfg), &CheckConfig::default())
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn clean_2n2t_verifies_exhaustively() {
    let report = check(ModelConfig::clean_2n2t());
    assert!(report.complete, "state space not exhausted");
    assert!(
        report.violation.is_none(),
        "violation:\n{}",
        report.violation.unwrap().render()
    );
    assert!(report.unique_states > 100, "suspiciously small state space");
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn conflicting_writers_2n2t_verify_exhaustively() {
    let report = check(ModelConfig::conflict_2n2t());
    assert!(
        report.verified(),
        "violation: {:?}",
        report.violation.map(|v| v.render())
    );
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn clean_3n2t_verifies_exhaustively() {
    let report = check(ModelConfig::clean_3n2t());
    assert!(
        report.verified(),
        "violation: {:?}",
        report.violation.map(|v| v.render())
    );
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn clean_2n3t_verifies_exhaustively() {
    let report = check(ModelConfig::clean_2n3t());
    assert!(
        report.verified(),
        "violation: {:?}",
        report.violation.map(|v| v.render())
    );
    assert!(
        report.unique_states > 10_000,
        "expected a five-figure state space"
    );
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn contended_2n3t_verifies_exhaustively() {
    let report = check(ModelConfig::contended_2n3t());
    assert!(
        report.verified(),
        "violation: {:?}",
        report.violation.map(|v| v.render())
    );
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn clean_2n2t_singleton_confirm_verifies_exhaustively() {
    let report = check(ModelConfig::singleton_2n2t());
    assert!(
        report.verified(),
        "violation: {:?}",
        report.violation.map(|v| v.render())
    );
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn duplicated_prepare_is_harmless_without_the_mutation() {
    // The network may duplicate a Prepare; the prepared_ever dedup absorbs
    // it. (The mutation test below removes the dedup and must fail.)
    let cfg = ModelConfig {
        duplicate_prepare_budget: 1,
        ..ModelConfig::clean_2n2t()
    };
    let report = check(cfg);
    assert!(
        report.verified(),
        "violation: {:?}",
        report.violation.map(|v| v.render())
    );
}

/// Every mutation's exposing config must verify cleanly with the mutation
/// switched off — otherwise the mutation tests would prove nothing.
#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn mutation_configs_verify_when_unmutated() {
    for m in [
        Mutation::DuplicatePrepare,
        Mutation::AbortOvertakesPrepare,
        Mutation::PrematureRelease,
        Mutation::DroppedExclusionCeiling,
    ] {
        let mut cfg = ModelConfig::mutated(m);
        cfg.mutation = None;
        if m == Mutation::DuplicatePrepare {
            cfg.duplicate_prepare_budget = 0;
        }
        let report = check(cfg);
        assert!(
            report.verified(),
            "{m:?} config violates unmutated: {:?}",
            report.violation.map(|v| v.render())
        );
    }
}

fn assert_mutation_caught(m: Mutation, invariant_needle: &str) -> ChaosHints {
    let report = check(ModelConfig::mutated(m));
    let cx = report
        .violation
        .unwrap_or_else(|| panic!("{m:?} must produce a counterexample"));
    assert!(
        cx.invariant.contains(invariant_needle),
        "{m:?} violated the wrong invariant: {}",
        cx.invariant
    );
    assert!(
        cx.actions.len() <= 40,
        "{m:?} counterexample too long ({} actions):\n{}",
        cx.actions.len(),
        cx.render()
    );
    // The trace replays deterministically up to the violating step.
    let states = sss_model::checker::replay(&SssModel::new(ModelConfig::mutated(m)), &cx.actions);
    assert!(states.len() >= cx.actions.len());
    ChaosHints::from_counterexample(&cx)
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn mutation_duplicate_prepare_is_caught() {
    let hints = assert_mutation_caught(Mutation::DuplicatePrepare, "quiescence");
    assert_eq!(hints.fault, sss_model::chaos::FaultKind::Duplicate);
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn mutation_abort_overtaking_prepare_is_caught() {
    let hints = assert_mutation_caught(Mutation::AbortOvertakesPrepare, "quiescence");
    assert_eq!(hints.fault, sss_model::chaos::FaultKind::Reorder);
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn mutation_premature_release_is_caught() {
    assert_mutation_caught(Mutation::PrematureRelease, "release overtook confirmation");
}

#[cfg_attr(debug_assertions, ignore = "exhaustive BFS: run with --release")]
#[test]
fn mutation_dropped_exclusion_ceiling_is_caught() {
    assert_mutation_caught(Mutation::DroppedExclusionCeiling, "exclusion stability");
}
