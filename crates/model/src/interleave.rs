//! A schedule-enumerating interleaving harness.
//!
//! [`explore_schedules`] deterministically enumerates **every** interleaving
//! of two or three short per-thread step lists and executes each complete
//! schedule against a fresh instance of the shared state. This replaces
//! "run it 10 000 times under load and hope the race fires" with exhaustive
//! coverage of the op-level schedules of a hot spot: for `k` threads with
//! `n1..nk` steps there are `(n1+..+nk)! / (n1!·..·nk!)` schedules, which for
//! the 2–4-step lists used by the tests stays in the hundreds to low
//! thousands.
//!
//! Unlike the BFS checker (which needs `Clone + encode` states), the harness
//! re-executes each schedule from scratch, so it drives the *real*
//! concurrency-facing types (`MvStore`, `Mailbox`, `CoalescerCore`) without
//! any modelling layer in between.

/// One step of one logical thread: a fallible operation on the shared state.
/// Returning `Err` fails the schedule with that message.
pub type Step<'a, S> = Box<dyn Fn(&mut S) -> Result<(), String> + 'a>;

/// One complete interleaving: the sequence of thread indices in execution
/// order (thread `i`'s steps always run in their list order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Thread index picked at each point of the schedule.
    pub picks: Vec<usize>,
}

impl Schedule {
    /// Renders the schedule as a compact `t0 t1 t0 ...` string.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self.picks.iter().map(|t| format!("t{t}")).collect();
        parts.join(" ")
    }
}

/// Result of exhausting every schedule.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// The first schedule that failed, with the step's (or final check's)
    /// error message; `None` when every schedule passed.
    pub failure: Option<(Schedule, String)>,
}

impl ScheduleOutcome {
    /// `true` when every enumerated schedule passed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Enumerates every interleaving of `threads` (each a list of in-order
/// steps), executing each complete schedule against a fresh state from
/// `init` and then running the `finally` check on the end state.
///
/// Stops at the first failing schedule (fail-fast keeps the reported
/// schedule minimal in lexicographic order, which in practice means the
/// failure fires with as few context switches as the bug allows).
pub fn explore_schedules<S>(
    mut init: impl FnMut() -> S,
    threads: &[Vec<Step<'_, S>>],
    mut finally: impl FnMut(&S) -> Result<(), String>,
) -> ScheduleOutcome {
    let mut outcome = ScheduleOutcome {
        schedules: 0,
        failure: None,
    };
    let total: usize = threads.iter().map(|t| t.len()).sum();
    let mut picks: Vec<usize> = Vec::with_capacity(total);
    enumerate(
        threads,
        total,
        &mut picks,
        &mut init,
        &mut finally,
        &mut outcome,
    );
    outcome
}

fn enumerate<S>(
    threads: &[Vec<Step<'_, S>>],
    total: usize,
    picks: &mut Vec<usize>,
    init: &mut impl FnMut() -> S,
    finally: &mut impl FnMut(&S) -> Result<(), String>,
    outcome: &mut ScheduleOutcome,
) {
    if outcome.failure.is_some() {
        return;
    }
    if picks.len() == total {
        outcome.schedules += 1;
        if let Err(msg) = run_schedule(threads, picks, init, finally) {
            outcome.failure = Some((
                Schedule {
                    picks: picks.clone(),
                },
                msg,
            ));
        }
        return;
    }
    for t in 0..threads.len() {
        let taken = picks.iter().filter(|&&p| p == t).count();
        if taken < threads[t].len() {
            picks.push(t);
            enumerate(threads, total, picks, init, finally, outcome);
            picks.pop();
        }
    }
}

fn run_schedule<S>(
    threads: &[Vec<Step<'_, S>>],
    picks: &[usize],
    init: &mut impl FnMut() -> S,
    finally: &mut impl FnMut(&S) -> Result<(), String>,
) -> Result<(), String> {
    let mut state = init();
    let mut cursor = vec![0usize; threads.len()];
    for (at, &t) in picks.iter().enumerate() {
        let step = &threads[t][cursor[t]];
        cursor[t] += 1;
        step(&mut state).map_err(|e| format!("step {at} (thread t{t}): {e}"))?;
    }
    finally(&state).map_err(|e| format!("final check: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump(by: u64) -> Step<'static, u64> {
        Box::new(move |s: &mut u64| {
            *s += by;
            Ok(())
        })
    }

    #[test]
    fn enumerates_the_multinomial_number_of_schedules() {
        // 2 + 2 steps -> C(4, 2) = 6 interleavings.
        let outcome = explore_schedules(
            || 0u64,
            &[vec![bump(1), bump(1)], vec![bump(10), bump(10)]],
            |s| {
                if *s == 22 {
                    Ok(())
                } else {
                    Err(format!("lost update: {s}"))
                }
            },
        );
        assert!(outcome.ok(), "{:?}", outcome.failure);
        assert_eq!(outcome.schedules, 6);
    }

    #[test]
    fn three_thread_counts() {
        // 2 + 1 + 1 steps -> 4!/2! = 12 interleavings.
        let outcome = explore_schedules(
            || 0u64,
            &[vec![bump(1), bump(1)], vec![bump(5)], vec![bump(7)]],
            |_| Ok(()),
        );
        assert!(outcome.ok());
        assert_eq!(outcome.schedules, 12);
    }

    #[test]
    fn reports_the_first_failing_schedule() {
        // A "check then act" race: thread 0 reads a flag then asserts it is
        // still clear when it writes; thread 1 sets the flag in between.
        #[derive(Default)]
        struct Racy {
            observed_clear: bool,
            flag: bool,
        }
        let t0: Vec<Step<'_, Racy>> = vec![
            Box::new(|s: &mut Racy| {
                s.observed_clear = !s.flag;
                Ok(())
            }),
            Box::new(|s: &mut Racy| {
                if s.observed_clear && s.flag {
                    return Err("stale check-then-act".into());
                }
                Ok(())
            }),
        ];
        let t1: Vec<Step<'_, Racy>> = vec![Box::new(|s: &mut Racy| {
            s.flag = true;
            Ok(())
        })];
        let outcome = explore_schedules(Racy::default, &[t0, t1], |_| Ok(()));
        let (schedule, msg) = outcome.failure.expect("the race must fire");
        assert!(msg.contains("stale check-then-act"));
        // The failing schedule interleaves t1 between t0's two steps.
        assert_eq!(schedule.picks, vec![0, 1, 0]);
    }
}
