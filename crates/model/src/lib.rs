//! # Exhaustive verification harness for the SSS protocol core
//!
//! This crate contains two complementary exhaustive-verification tools that
//! back the probabilistic chaos suite with *complete* coverage of small
//! configurations:
//!
//! * [`checker`] — a generic explicit-state **BFS model checker** (canonical
//!   state fingerprints, frontier dedup, state/depth budgets, minimal
//!   counterexample traces), and [`sss`] — a compact state-machine model of
//!   the SSS protocol built on the *same* data structures the production
//!   node uses (`CommitQueue`, `SnapshotQueue`, `NLog`, `VectorClock`,
//!   `CoalescerCore` and the pure functions of `sss_core::protocol`), so the
//!   model cannot silently diverge from the implementation on the pieces
//!   that matter.
//! * [`interleave`] — a **schedule-enumerating interleaving harness**: a
//!   deterministic DFS over every interleaving of two or three step lists,
//!   applied to the shared-state hot spots (sharded `MvStore` copy-on-write
//!   install vs. chain walk, `Mailbox` batch push/pop/close races,
//!   `CoalescerCore` leadership handoff).
//!
//! The model checks, on every reachable state of 2–3 node / 2–3 transaction
//! configurations:
//!
//! 1. **External consistency** — a transaction beginning after another's
//!    external commit observes a snapshot dominating that commit, and a
//!    read-only transaction never completes having observed a writer that
//!    has not externally committed.
//! 2. **Snapshot-bounded reads** — every returned version is within the
//!    read's visibility bound.
//! 3. **No unconfirmed reads** — a read-only transaction is never served a
//!    version whose writer's global confirmation round has not completed.
//! 4. **Release never overtakes confirmation** — no node processes a
//!    `ReleaseExternal` for a transaction before its round completed.
//! 5. **Exclusion-ceiling stability** — a version that was ever excluded
//!    for a reader is never later returned to that reader.
//! 6. **Deadlock freedom / quiescence** — in every terminal state all
//!    transactions are decided and every queue, lock and parked read has
//!    drained.
//!
//! Seeded mutations ([`sss::Mutation`]) re-introduce four historical bugs
//! and the test-suite asserts the checker produces a (minimal, replayable)
//! counterexample for each; the traces convert into chaos regression
//! scenarios via [`chaos`].

pub mod chaos;
pub mod checker;
pub mod interleave;
pub mod sss;

pub use chaos::ChaosHints;
pub use checker::{bfs_check, CheckConfig, CheckReport, Counterexample, Model};
pub use interleave::{explore_schedules, Schedule, ScheduleOutcome};
pub use sss::{ModelConfig, Mutation, SssModel, TxnSpec};
