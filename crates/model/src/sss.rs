//! An explicit-state model of the SSS protocol, built on the production
//! data structures.
//!
//! The model is a compact message-passing state machine: `N` nodes
//! (partially replicated — key `k` lives on node `k % N`), `T` scripted
//! transactions ([`TxnSpec`]) and a multiset of in-flight messages. The
//! checker's actions are *start a client*, *deliver one message* and *run
//! one coalescer round*, so BFS over the action space enumerates **every**
//! interleaving of message deliveries and client steps, including the
//! reorderings and overlaps the chaos harness can only sample.
//!
//! Fidelity comes from reusing the production types for everything the
//! protocol's correctness argument rests on: [`CommitQueue`] ordering,
//! [`SnapshotQueue`] completion-order barriers, [`NLog::visible_max`]
//! bound/ceiling selection, [`CoalescerCore`] round planning and the pure
//! functions of [`sss_core::protocol`] (xact-vn equalization, visibility,
//! commit-queue ambiguity, external-commit blocking). The model adds only
//! what those types leave to the caller: message routing, 2PC driving and
//! lock bookkeeping.
//!
//! Deliberate simplifications (documented divergences, not bugs):
//!
//! * No timers: no confirmation linger, no pre-commit `hold_max` expiry,
//!   no admission backoff. These are performance levers, not correctness
//!   mechanisms.
//! * Read-only forwarding (`RegisterForward`) is elided: completed
//!   read-only transactions broadcast (or piggyback) their `Remove` to all
//!   nodes, which subsumes the forwarding targets.
//! * Values are not modelled — versions carry `(writer, commit_vc)`; every
//!   invariant is about *which* version is observed, never its payload.
//!
//! [`Mutation`] seeds four historical bugs back into the handlers; the
//! checker produces a minimal replayable counterexample for each (see the
//! crate tests), and those traces seed the `mc-*` chaos regression
//! scenarios in `sss-bench`.

use std::collections::BTreeMap;
use std::sync::Arc;

use sss_core::coalescer::{CoalescerCore, RoundPlan};
use sss_core::protocol;
use sss_core::{CommitQueue, NLog, SnapshotQueue};
use sss_storage::TxnId;
use sss_vclock::{NodeId, VectorClock};

use crate::checker::Model;

type Vc = VectorClock;

/// One scripted transaction. Keys are small integers; key `k` is stored on
/// node `k % nodes`. Reads execute in list order, one at a time (matching
/// the session layer's sequential reads).
#[derive(Debug, Clone)]
pub enum TxnSpec {
    /// An update transaction: read `reads`, then 2PC-commit `writes`.
    Update {
        /// Origin node (where the client begins and confirms).
        origin: usize,
        /// Keys read (in order) before the commit attempt.
        reads: Vec<u8>,
        /// Keys written at commit.
        writes: Vec<u8>,
    },
    /// An abort-free read-only transaction reading `reads` in order.
    ReadOnly {
        /// Origin node.
        origin: usize,
        /// Keys read, in order.
        reads: Vec<u8>,
    },
}

impl TxnSpec {
    fn origin(&self) -> usize {
        match self {
            TxnSpec::Update { origin, .. } | TxnSpec::ReadOnly { origin, .. } => *origin,
        }
    }

    fn reads(&self) -> &[u8] {
        match self {
            TxnSpec::Update { reads, .. } | TxnSpec::ReadOnly { reads, .. } => reads,
        }
    }

    fn writes(&self) -> &[u8] {
        match self {
            TxnSpec::Update { writes, .. } => writes,
            TxnSpec::ReadOnly { .. } => &[],
        }
    }

    fn is_update(&self) -> bool {
        matches!(self, TxnSpec::Update { .. })
    }
}

/// A historical bug seeded back into the model's handlers. Each must yield
/// a minimal counterexample from the checker (asserted by the tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop the `prepared_ever` dedup: a duplicated `Prepare` is processed
    /// twice, wedging a ghost entry in the commit queue.
    DuplicatePrepare,
    /// Drop the `aborted_early` tombstone: an abort `Decide` overtaking its
    /// `Prepare` leaves the late prepare wedged with its locks.
    AbortOvertakesPrepare,
    /// The confirmation leader broadcasts `ReleaseExternal` when the round
    /// is *sent* instead of when it has collected its acks.
    PrematureRelease,
    /// A read-only transaction's first read discards the freshly computed
    /// exclusion ceilings (they are neither applied to `visible_max`, nor
    /// accumulated, nor reported) — covering both the serve path and the
    /// deferral/re-serve path, which reuse the bound established here.
    DroppedExclusionCeiling,
}

/// A checkable configuration: the cluster size, the transaction mix and the
/// confirmation mode.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Cluster size (2 or 3 for exhaustive runs).
    pub nodes: usize,
    /// The scripted transactions (index = transaction id).
    pub txns: Vec<TxnSpec>,
    /// `true` — epoch-grouped confirmation via the origin's coalescer;
    /// `false` — the base protocol's one round per transaction, driven by
    /// the client.
    pub grouped_confirm: bool,
    /// Coalescer window (`confirm_epoch_max`); ignored when not grouped.
    pub confirm_window: usize,
    /// How many times the network may duplicate a `Prepare` delivery.
    pub duplicate_prepare_budget: u8,
    /// The seeded bug, if any.
    pub mutation: Option<Mutation>,
}

impl ModelConfig {
    /// 2 nodes, 2 transactions: one writer, one read-only observer.
    pub fn clean_2n2t() -> Self {
        ModelConfig {
            nodes: 2,
            txns: vec![
                TxnSpec::Update {
                    origin: 0,
                    reads: vec![],
                    writes: vec![0],
                },
                TxnSpec::ReadOnly {
                    origin: 1,
                    reads: vec![0],
                },
            ],
            grouped_confirm: true,
            confirm_window: 2,
            duplicate_prepare_budget: 0,
            mutation: None,
        }
    }

    /// 2 nodes, 2 writers contending on one key (exercises lock-conflict
    /// aborts and both 2PC decision paths).
    pub fn conflict_2n2t() -> Self {
        ModelConfig {
            nodes: 2,
            txns: vec![
                TxnSpec::Update {
                    origin: 0,
                    reads: vec![],
                    writes: vec![0],
                },
                TxnSpec::Update {
                    origin: 1,
                    reads: vec![0],
                    writes: vec![0],
                },
            ],
            grouped_confirm: true,
            confirm_window: 2,
            duplicate_prepare_budget: 0,
            mutation: None,
        }
    }

    /// 3 nodes, 2 transactions: a two-home writer (xact-vn equalization
    /// across nodes 0 and 1) and a remote read-only observer of both keys.
    pub fn clean_3n2t() -> Self {
        ModelConfig {
            nodes: 3,
            txns: vec![
                TxnSpec::Update {
                    origin: 0,
                    reads: vec![],
                    writes: vec![0, 1],
                },
                TxnSpec::ReadOnly {
                    origin: 2,
                    reads: vec![0, 1],
                },
            ],
            grouped_confirm: true,
            confirm_window: 2,
            duplicate_prepare_budget: 0,
            mutation: None,
        }
    }

    /// 2 nodes, 3 transactions: two independent writers (one per node) and
    /// a read-only transaction observing both keys — exercises grouped
    /// confirmation rounds with several members, parked reads behind two
    /// writers and cross-node snapshot bounds.
    pub fn clean_2n3t() -> Self {
        ModelConfig {
            nodes: 2,
            txns: vec![
                TxnSpec::Update {
                    origin: 0,
                    reads: vec![],
                    writes: vec![0],
                },
                TxnSpec::Update {
                    origin: 1,
                    reads: vec![],
                    writes: vec![1],
                },
                TxnSpec::ReadOnly {
                    origin: 0,
                    reads: vec![0, 1],
                },
            ],
            grouped_confirm: true,
            confirm_window: 2,
            duplicate_prepare_budget: 0,
            mutation: None,
        }
    }

    /// 2 nodes, 3 transactions contending on one key: two writers (lock
    /// conflicts, aborts, pre-commit blocking) plus a read-only observer.
    pub fn contended_2n3t() -> Self {
        ModelConfig {
            nodes: 2,
            txns: vec![
                TxnSpec::Update {
                    origin: 0,
                    reads: vec![],
                    writes: vec![0],
                },
                TxnSpec::Update {
                    origin: 1,
                    reads: vec![],
                    writes: vec![0],
                },
                TxnSpec::ReadOnly {
                    origin: 1,
                    reads: vec![0],
                },
            ],
            grouped_confirm: true,
            confirm_window: 2,
            duplicate_prepare_budget: 0,
            mutation: None,
        }
    }

    /// [`ModelConfig::clean_2n2t`] under the base (per-transaction)
    /// confirmation protocol.
    pub fn singleton_2n2t() -> Self {
        ModelConfig {
            grouped_confirm: false,
            ..ModelConfig::clean_2n2t()
        }
    }

    /// The smallest configuration that exposes `mutation` (checker-verified
    /// in the tests; the same configs verify clean when the mutation is
    /// off).
    pub fn mutated(mutation: Mutation) -> Self {
        let mut cfg = match mutation {
            Mutation::DuplicatePrepare => ModelConfig {
                duplicate_prepare_budget: 1,
                ..ModelConfig::clean_2n2t()
            },
            // The aborting transaction writes two keys with different homes
            // so the abort decision can overtake the prepare at the second
            // participant.
            Mutation::AbortOvertakesPrepare => ModelConfig {
                nodes: 2,
                txns: vec![
                    TxnSpec::Update {
                        origin: 0,
                        reads: vec![],
                        writes: vec![0],
                    },
                    TxnSpec::Update {
                        origin: 1,
                        reads: vec![],
                        writes: vec![0, 1],
                    },
                ],
                grouped_confirm: true,
                confirm_window: 2,
                duplicate_prepare_budget: 0,
                mutation: None,
            },
            Mutation::PrematureRelease => ModelConfig {
                nodes: 2,
                txns: vec![TxnSpec::Update {
                    origin: 0,
                    reads: vec![],
                    writes: vec![0],
                }],
                grouped_confirm: true,
                confirm_window: 1,
                duplicate_prepare_budget: 0,
                mutation: None,
            },
            // A first reader pins a low insertion-snapshot (blocking the
            // writer's external commit and keeping its squeue entry alive),
            // so a second reader's first read must compute — and, mutated,
            // drop — an exclusion ceiling for the writer.
            Mutation::DroppedExclusionCeiling => ModelConfig {
                nodes: 2,
                txns: vec![
                    TxnSpec::ReadOnly {
                        origin: 0,
                        reads: vec![0],
                    },
                    TxnSpec::Update {
                        origin: 1,
                        reads: vec![],
                        writes: vec![0],
                    },
                    TxnSpec::ReadOnly {
                        origin: 1,
                        reads: vec![0],
                    },
                ],
                grouped_confirm: true,
                confirm_window: 2,
                duplicate_prepare_budget: 0,
                mutation: None,
            },
        };
        cfg.mutation = Some(mutation);
        cfg
    }
}

/// One checker action. `Deliver` indexes the state's message multiset;
/// identical envelopes are enumerated once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Begin transaction `t` at its origin.
    Start(u8),
    /// Deliver in-flight message `i`.
    Deliver(u8),
    /// The active confirmation leader at node `n` plans one round.
    Coalesce(u8),
}

/// Message destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dst {
    Node(u8),
    Client(u8),
}

#[derive(Debug, Clone, PartialEq)]
enum Msg {
    ReadReq {
        txn: u8,
        key: u8,
        is_update: bool,
        vc: Vc,
        has_read: u16,
        exclude: Vec<Arc<Vc>>,
    },
    ReadRet {
        txn: u8,
        key: u8,
        from: u8,
        writer: Option<u8>,
        vc: Vc,
        excluded: Vec<Arc<Vc>>,
        propagated: Vec<(u8, u64)>,
    },
    Prepare {
        txn: u8,
        vc: Vc,
        observed: Vec<(u8, Option<u8>)>,
    },
    Vote {
        txn: u8,
        from: u8,
        ok: bool,
        vc: Vc,
    },
    Decide {
        txn: u8,
        ok: bool,
        vc: Vc,
        propagated: Vec<(u8, u64)>,
    },
    ExtAck {
        txn: u8,
        from: u8,
    },
    Confirm {
        entries: Vec<(u8, Arc<Vc>)>,
        release: Vec<u8>,
        remove: Vec<u8>,
        leader: Dst,
    },
    ConfirmAck {
        round: u8,
        from: u8,
    },
    Release {
        txns: Vec<u8>,
    },
    Remove {
        txns: Vec<u8>,
    },
}

#[derive(Debug, Clone, PartialEq)]
struct Envelope {
    dst: Dst,
    msg: Msg,
}

/// An installed version: the writing transaction (`None` for the initial
/// version) and its commit vector clock (shared with squeue/ceilings).
#[derive(Debug, Clone)]
struct Version {
    writer: Option<u8>,
    vc: Arc<Vc>,
}

#[derive(Debug, Clone, Copy, Default)]
struct LockSt {
    ex: Option<u8>,
    shared: u16,
}

#[derive(Debug, Clone)]
struct Prep {
    is_write_replica: bool,
    /// `Some(propagated)` once the commit decision arrived (the read-only
    /// entries to re-insert behind the write for the completion-order
    /// barrier).
    decided: Option<Vec<(u8, u64)>>,
}

#[derive(Debug, Clone)]
struct PendingRead {
    txn: u8,
    key: u8,
    vc: Vc,
    has_read: u16,
    exclude: Vec<Arc<Vc>>,
    /// Ceilings computed at this read's bound establishment, reported to
    /// the client on the final serve.
    newly: Vec<Arc<Vc>>,
    /// `true` once the bound has been established (re-serves must not
    /// recompute it).
    pinned: bool,
}

#[derive(Debug, Clone)]
struct Parked {
    writer: u8,
    read: PendingRead,
}

#[derive(Debug, Clone)]
struct Round {
    id: u8,
    members: Vec<u8>,
    acks: u16,
}

#[derive(Debug, Clone)]
struct NodeSt {
    vc: Vc,
    confirmed_vc: Vc,
    nlog: NLog,
    cq: CommitQueue,
    squeues: BTreeMap<u8, SnapshotQueue>,
    chains: BTreeMap<u8, Vec<Version>>,
    locks: BTreeMap<u8, LockSt>,
    prepared: BTreeMap<u8, Prep>,
    waiting_external: Vec<(u8, Arc<Vc>)>,
    pending_reads: Vec<PendingRead>,
    parked_reads: Vec<Parked>,
    pending_global: u16,
    released: u16,
    removed_ro: u16,
    aborted_early: u16,
    prepared_ever: u16,
    confirm_acked: u16,
    coal: CoalescerCore<()>,
    round: Option<Round>,
    ghosts: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Read,
    Vote,
    ExtWait,
    ConfirmWait,
    Committed,
    Aborted,
}

#[derive(Debug, Clone)]
struct ClientSt {
    phase: Phase,
    vc: Vc,
    has_read: u16,
    next_read: usize,
    observed: Vec<(u8, Option<u8>)>,
    propagated: Vec<(u8, u64)>,
    exclude: Vec<Arc<Vc>>,
    votes: u16,
    ext_acks: u16,
    confirm_acks: u16,
    commit_vc: Option<Arc<Vc>>,
}

/// One reachable configuration of the modelled cluster. Fields are private;
/// states are produced by the checker and replayed via
/// [`crate::checker::replay`].
#[derive(Debug, Clone)]
pub struct SssState {
    nodes: Vec<NodeSt>,
    clients: Vec<ClientSt>,
    msgs: Vec<Envelope>,
    /// Globally-true confirmation bits (round completed), the reference for
    /// the unconfirmed-read and release-overtake invariants.
    confirmed: u16,
    dup_budget: u8,
    /// Spec-shadow exclusion ceilings per read-only transaction: recorded
    /// even when a mutation makes the implementation drop them.
    shadow: Vec<Vec<Arc<Vc>>>,
}

/// The SSS protocol as a [`Model`]. See the module docs.
pub struct SssModel {
    cfg: ModelConfig,
}

fn bit(t: usize) -> u16 {
    1 << t
}

fn tid(t: usize) -> TxnId {
    TxnId::new(NodeId(0), t as u64 + 1)
}

/// Ghost commit-queue entries minted by the duplicate-prepare mutation.
const GHOST_BASE: u64 = 1000;

impl SssModel {
    /// A model for `cfg`.
    pub fn new(cfg: ModelConfig) -> Self {
        assert!(cfg.nodes >= 1 && cfg.nodes <= 16, "node count out of range");
        assert!(cfg.txns.len() <= 16, "transaction count out of range");
        for t in &cfg.txns {
            assert!(t.origin() < cfg.nodes, "origin out of range");
            if t.is_update() {
                assert!(!t.writes().is_empty(), "updates must write");
            }
        }
        SssModel { cfg }
    }

    /// The configuration being checked.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn home(&self, key: u8) -> usize {
        key as usize % self.cfg.nodes
    }

    fn participants(&self, t: usize) -> u16 {
        let spec = &self.cfg.txns[t];
        let mut mask = 0u16;
        for &k in spec.reads().iter().chain(spec.writes()) {
            mask |= bit(self.home(k));
        }
        mask
    }

    fn write_mask(&self, t: usize) -> u16 {
        let mut mask = 0u16;
        for &k in self.cfg.txns[t].writes() {
            mask |= bit(self.home(k));
        }
        mask
    }

    fn write_indices(&self, t: usize) -> Vec<usize> {
        let mask = self.write_mask(t);
        (0..self.cfg.nodes)
            .filter(|&n| mask & bit(n) != 0)
            .collect()
    }

    /// Keys transaction `t` writes whose home is node `i`.
    fn local_writes(&self, t: usize, i: usize) -> Vec<u8> {
        self.cfg.txns[t]
            .writes()
            .iter()
            .copied()
            .filter(|&k| self.home(k) == i)
            .collect()
    }

    fn all_nodes_mask(&self) -> u16 {
        (1 << self.cfg.nodes) - 1
    }
}

impl Model for SssModel {
    type State = SssState;
    type Action = Action;

    fn init(&self) -> SssState {
        let n = self.cfg.nodes;
        let mut keys: Vec<u8> = self
            .cfg
            .txns
            .iter()
            .flat_map(|t| t.reads().iter().chain(t.writes()).copied())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let nodes = (0..n)
            .map(|i| NodeSt {
                vc: Vc::new(n),
                confirmed_vc: Vc::new(n),
                nlog: NLog::new(n, 64),
                cq: CommitQueue::new(i),
                squeues: BTreeMap::new(),
                chains: keys
                    .iter()
                    .filter(|&&k| self.home(k) == i)
                    .map(|&k| {
                        (
                            k,
                            vec![Version {
                                writer: None,
                                vc: Arc::new(Vc::new(n)),
                            }],
                        )
                    })
                    .collect(),
                locks: BTreeMap::new(),
                prepared: BTreeMap::new(),
                waiting_external: Vec::new(),
                pending_reads: Vec::new(),
                parked_reads: Vec::new(),
                pending_global: 0,
                released: 0,
                removed_ro: 0,
                aborted_early: 0,
                prepared_ever: 0,
                confirm_acked: 0,
                coal: CoalescerCore::new(),
                round: None,
                ghosts: 0,
            })
            .collect();
        let clients = self
            .cfg
            .txns
            .iter()
            .map(|_| ClientSt {
                phase: Phase::Idle,
                vc: Vc::new(n),
                has_read: 0,
                next_read: 0,
                observed: Vec::new(),
                propagated: Vec::new(),
                exclude: Vec::new(),
                votes: 0,
                ext_acks: 0,
                confirm_acks: 0,
                commit_vc: None,
            })
            .collect();
        SssState {
            nodes,
            clients,
            msgs: Vec::new(),
            confirmed: 0,
            dup_budget: self.cfg.duplicate_prepare_budget,
            shadow: vec![Vec::new(); self.cfg.txns.len()],
        }
    }

    fn actions(&self, s: &SssState, out: &mut Vec<Action>) {
        for (t, c) in s.clients.iter().enumerate() {
            if c.phase == Phase::Idle {
                out.push(Action::Start(t as u8));
            }
        }
        for (i, env) in s.msgs.iter().enumerate() {
            if !s.msgs[..i].contains(env) {
                out.push(Action::Deliver(i as u8));
            }
        }
        for (i, st) in s.nodes.iter().enumerate() {
            if st.coal.in_flight() && st.round.is_none() {
                out.push(Action::Coalesce(i as u8));
            }
        }
    }

    fn step(&self, state: &SssState, action: Action) -> Result<SssState, String> {
        let mut s = state.clone();
        match action {
            Action::Start(t) => self.start(&mut s, t as usize)?,
            Action::Deliver(i) => {
                let env = s.msgs.remove(i as usize);
                self.deliver(&mut s, env)?;
            }
            Action::Coalesce(n) => self.coalesce(&mut s, n as usize),
        }
        Ok(s)
    }

    fn check(&self, s: &SssState, terminal: bool) -> Result<(), String> {
        if !terminal {
            return Ok(());
        }
        for (t, c) in s.clients.iter().enumerate() {
            if !matches!(c.phase, Phase::Committed | Phase::Aborted) {
                return Err(format!(
                    "quiescence: client t{t} stuck in {:?} with no enabled action",
                    c.phase
                ));
            }
        }
        for (i, st) in s.nodes.iter().enumerate() {
            if !st.cq.is_empty() {
                return Err(format!("quiescence: commit queue not drained at n{i}"));
            }
            if !st.prepared.is_empty() {
                return Err(format!("quiescence: prepared entries linger at n{i}"));
            }
            if !st.locks.is_empty() {
                return Err(format!("quiescence: locks still held at n{i}"));
            }
            if !st.waiting_external.is_empty() {
                return Err(format!(
                    "quiescence: external commits still waiting at n{i}"
                ));
            }
            if !st.pending_reads.is_empty() || !st.parked_reads.is_empty() {
                return Err(format!("quiescence: reads still pending at n{i}"));
            }
            if st.squeues.values().any(|q| !q.is_empty()) {
                return Err(format!("quiescence: snapshot-queue entries linger at n{i}"));
            }
            if st.coal.in_flight()
                || st.coal.pending_len() != 0
                || st.coal.pending_release_len() != 0
                || st.coal.pending_remove_len() != 0
                || st.round.is_some()
            {
                return Err(format!("quiescence: confirmation coalescer active at n{i}"));
            }
        }
        Ok(())
    }

    fn encode(&self, s: &SssState, out: &mut Vec<u8>) {
        for st in &s.nodes {
            enc_node(out, st);
        }
        for c in &s.clients {
            enc_client(out, c);
        }
        // Message order is delivery bookkeeping, not semantics: encode the
        // multiset canonically.
        let mut encoded: Vec<Vec<u8>> = s
            .msgs
            .iter()
            .map(|e| {
                let mut b = Vec::new();
                enc_envelope(&mut b, e);
                b
            })
            .collect();
        encoded.sort_unstable();
        enc_u64(out, encoded.len() as u64);
        for b in encoded {
            enc_u64(out, b.len() as u64);
            out.extend_from_slice(&b);
        }
        out.extend_from_slice(&s.confirmed.to_le_bytes());
        out.push(s.dup_budget);
        for ceilings in &s.shadow {
            enc_vcs_sorted(out, ceilings);
        }
    }

    fn describe(&self, s: &SssState, action: Action) -> String {
        match action {
            Action::Start(t) => {
                let kind = if self.cfg.txns[t as usize].is_update() {
                    "update"
                } else {
                    "read-only"
                };
                format!("start t{t} ({kind})")
            }
            Action::Deliver(i) => match s.msgs.get(i as usize) {
                Some(env) => format!("deliver {} -> {}", msg_label(&env.msg), dst_label(env.dst)),
                None => format!("deliver #{i}"),
            },
            Action::Coalesce(n) => format!("coalesce n{n}"),
        }
    }
}

fn dst_label(dst: Dst) -> String {
    match dst {
        Dst::Node(n) => format!("n{n}"),
        Dst::Client(t) => format!("t{t}"),
    }
}

fn msg_label(msg: &Msg) -> String {
    match msg {
        Msg::ReadReq { txn, key, .. } => format!("ReadReq t{txn} k{key}"),
        Msg::ReadRet { txn, key, from, .. } => format!("ReadRet t{txn} k{key} n{from}"),
        Msg::Prepare { txn, .. } => format!("Prepare t{txn}"),
        Msg::Vote { txn, from, ok, .. } => {
            format!("Vote{} t{txn} n{from}", if *ok { "+" } else { "-" })
        }
        Msg::Decide { txn, ok, .. } => {
            format!("Decide-{} t{txn}", if *ok { "commit" } else { "abort" })
        }
        Msg::ExtAck { txn, from } => format!("ExtAck t{txn} n{from}"),
        Msg::Confirm { entries, .. } => {
            let members: Vec<String> = entries.iter().map(|(t, _)| format!("t{t}")).collect();
            format!("Confirm [{}]", members.join(","))
        }
        Msg::ConfirmAck { round, from } => format!("ConfirmAck r{round} n{from}"),
        Msg::Release { txns } => {
            let list: Vec<String> = txns.iter().map(|t| format!("t{t}")).collect();
            format!("Release [{}]", list.join(","))
        }
        Msg::Remove { txns } => {
            let list: Vec<String> = txns.iter().map(|t| format!("t{t}")).collect();
            format!("Remove [{}]", list.join(","))
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical encoding
// ---------------------------------------------------------------------------

fn enc_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_vc(out: &mut Vec<u8>, vc: &Vc) {
    out.push(vc.width() as u8);
    for v in vc.iter() {
        enc_u64(out, v);
    }
}

fn enc_vcs_sorted(out: &mut Vec<u8>, vcs: &[Arc<Vc>]) {
    let mut encoded: Vec<Vec<u8>> = vcs
        .iter()
        .map(|v| {
            let mut b = Vec::new();
            enc_vc(&mut b, v);
            b
        })
        .collect();
    encoded.sort_unstable();
    encoded.dedup();
    enc_u64(out, encoded.len() as u64);
    for b in encoded {
        out.extend_from_slice(&b);
    }
}

fn enc_pending(out: &mut Vec<u8>, p: &PendingRead) {
    out.push(p.txn);
    out.push(p.key);
    enc_vc(out, &p.vc);
    out.extend_from_slice(&p.has_read.to_le_bytes());
    enc_vcs_sorted(out, &p.exclude);
    enc_vcs_sorted(out, &p.newly);
    out.push(p.pinned as u8);
}

fn enc_node(out: &mut Vec<u8>, st: &NodeSt) {
    enc_vc(out, &st.vc);
    enc_vc(out, &st.confirmed_vc);
    enc_vc(out, st.nlog.most_recent_vc());
    enc_u64(out, st.nlog.len() as u64);
    for e in st.nlog.iter() {
        enc_u64(out, e.txn.seq);
        enc_vc(out, &e.vc);
    }
    enc_u64(out, st.cq.len() as u64);
    for e in st.cq.entries() {
        enc_u64(out, e.txn.seq);
        enc_vc(out, &e.vc);
        out.push(matches!(e.status, sss_core::CommitStatus::Ready) as u8);
    }
    enc_u64(out, st.squeues.len() as u64);
    for (k, q) in &st.squeues {
        out.push(*k);
        enc_u64(out, q.reads().len() as u64);
        for r in q.reads() {
            enc_u64(out, r.txn.seq);
            enc_u64(out, r.sid);
        }
        enc_u64(out, q.writes().len() as u64);
        for w in q.writes() {
            enc_u64(out, w.txn.seq);
            enc_u64(out, w.sid);
            enc_vc(out, &w.commit_vc);
        }
    }
    enc_u64(out, st.chains.len() as u64);
    for (k, versions) in &st.chains {
        out.push(*k);
        enc_u64(out, versions.len() as u64);
        for v in versions {
            out.push(v.writer.map_or(0xff, |w| w));
            enc_vc(out, &v.vc);
        }
    }
    enc_u64(out, st.locks.len() as u64);
    for (k, l) in &st.locks {
        out.push(*k);
        out.push(l.ex.map_or(0xff, |t| t));
        out.extend_from_slice(&l.shared.to_le_bytes());
    }
    enc_u64(out, st.prepared.len() as u64);
    for (t, p) in &st.prepared {
        out.push(*t);
        out.push(p.is_write_replica as u8);
        match &p.decided {
            None => out.push(0),
            Some(props) => {
                out.push(1);
                enc_u64(out, props.len() as u64);
                for (ro, sid) in props {
                    out.push(*ro);
                    enc_u64(out, *sid);
                }
            }
        }
    }
    let mut waiting: Vec<(u8, &Arc<Vc>)> =
        st.waiting_external.iter().map(|(t, v)| (*t, v)).collect();
    waiting.sort_by_key(|(t, _)| *t);
    enc_u64(out, waiting.len() as u64);
    for (t, v) in waiting {
        out.push(t);
        enc_vc(out, v);
    }
    enc_u64(out, st.pending_reads.len() as u64);
    for p in &st.pending_reads {
        enc_pending(out, p);
    }
    enc_u64(out, st.parked_reads.len() as u64);
    for p in &st.parked_reads {
        out.push(p.writer);
        enc_pending(out, &p.read);
    }
    for mask in [
        st.pending_global,
        st.released,
        st.removed_ro,
        st.aborted_early,
        st.prepared_ever,
        st.confirm_acked,
    ] {
        out.extend_from_slice(&mask.to_le_bytes());
    }
    out.push(st.coal.in_flight() as u8);
    let pending: Vec<TxnId> = st.coal.pending_txns().collect();
    enc_u64(out, pending.len() as u64);
    for t in pending {
        enc_u64(out, t.seq);
    }
    enc_u64(out, st.coal.pending_release_txns().len() as u64);
    for t in st.coal.pending_release_txns() {
        enc_u64(out, t.seq);
    }
    enc_u64(out, st.coal.pending_remove_txns().len() as u64);
    for t in st.coal.pending_remove_txns() {
        enc_u64(out, t.seq);
    }
    match &st.round {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            out.push(r.id);
            enc_u64(out, r.members.len() as u64);
            out.extend_from_slice(&r.members);
            out.extend_from_slice(&r.acks.to_le_bytes());
        }
    }
    out.push(st.ghosts);
}

fn enc_client(out: &mut Vec<u8>, c: &ClientSt) {
    out.push(c.phase as u8);
    enc_vc(out, &c.vc);
    out.extend_from_slice(&c.has_read.to_le_bytes());
    enc_u64(out, c.next_read as u64);
    enc_u64(out, c.observed.len() as u64);
    for (k, w) in &c.observed {
        out.push(*k);
        out.push(w.map_or(0xff, |w| w));
    }
    let mut props = c.propagated.clone();
    props.sort_unstable();
    enc_u64(out, props.len() as u64);
    for (ro, sid) in props {
        out.push(ro);
        enc_u64(out, sid);
    }
    enc_vcs_sorted(out, &c.exclude);
    for mask in [c.votes, c.ext_acks, c.confirm_acks] {
        out.extend_from_slice(&mask.to_le_bytes());
    }
    match &c.commit_vc {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            enc_vc(out, v);
        }
    }
}

fn enc_envelope(out: &mut Vec<u8>, env: &Envelope) {
    match env.dst {
        Dst::Node(n) => {
            out.push(0);
            out.push(n);
        }
        Dst::Client(t) => {
            out.push(1);
            out.push(t);
        }
    }
    match &env.msg {
        Msg::ReadReq {
            txn,
            key,
            is_update,
            vc,
            has_read,
            exclude,
        } => {
            out.push(0);
            out.push(*txn);
            out.push(*key);
            out.push(*is_update as u8);
            enc_vc(out, vc);
            out.extend_from_slice(&has_read.to_le_bytes());
            enc_vcs_sorted(out, exclude);
        }
        Msg::ReadRet {
            txn,
            key,
            from,
            writer,
            vc,
            excluded,
            propagated,
        } => {
            out.push(1);
            out.push(*txn);
            out.push(*key);
            out.push(*from);
            out.push(writer.map_or(0xff, |w| w));
            enc_vc(out, vc);
            enc_vcs_sorted(out, excluded);
            enc_u64(out, propagated.len() as u64);
            for (ro, sid) in propagated {
                out.push(*ro);
                enc_u64(out, *sid);
            }
        }
        Msg::Prepare { txn, vc, observed } => {
            out.push(2);
            out.push(*txn);
            enc_vc(out, vc);
            enc_u64(out, observed.len() as u64);
            for (k, w) in observed {
                out.push(*k);
                out.push(w.map_or(0xff, |w| w));
            }
        }
        Msg::Vote { txn, from, ok, vc } => {
            out.push(3);
            out.push(*txn);
            out.push(*from);
            out.push(*ok as u8);
            enc_vc(out, vc);
        }
        Msg::Decide {
            txn,
            ok,
            vc,
            propagated,
        } => {
            out.push(4);
            out.push(*txn);
            out.push(*ok as u8);
            enc_vc(out, vc);
            enc_u64(out, propagated.len() as u64);
            for (ro, sid) in propagated {
                out.push(*ro);
                enc_u64(out, *sid);
            }
        }
        Msg::ExtAck { txn, from } => {
            out.push(5);
            out.push(*txn);
            out.push(*from);
        }
        Msg::Confirm {
            entries,
            release,
            remove,
            leader,
        } => {
            out.push(6);
            enc_u64(out, entries.len() as u64);
            for (t, vc) in entries {
                out.push(*t);
                enc_vc(out, vc);
            }
            out.push(release.len() as u8);
            out.extend_from_slice(release);
            out.push(remove.len() as u8);
            out.extend_from_slice(remove);
            match leader {
                Dst::Node(n) => {
                    out.push(0);
                    out.push(*n);
                }
                Dst::Client(t) => {
                    out.push(1);
                    out.push(*t);
                }
            }
        }
        Msg::ConfirmAck { round, from } => {
            out.push(7);
            out.push(*round);
            out.push(*from);
        }
        Msg::Release { txns } => {
            out.push(8);
            out.push(txns.len() as u8);
            out.extend_from_slice(txns);
        }
        Msg::Remove { txns } => {
            out.push(9);
            out.push(txns.len() as u8);
            out.extend_from_slice(txns);
        }
    }
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

fn vote(t: usize, i: usize, ok: bool, vc: Vc) -> Envelope {
    Envelope {
        dst: Dst::Client(t as u8),
        msg: Msg::Vote {
            txn: t as u8,
            from: i as u8,
            ok,
            vc,
        },
    }
}

/// Releases every lock transaction `t` holds at this node, GC'ing empty
/// lock records (the lock map must stay canonical for state dedup).
fn release_locks(st: &mut NodeSt, t: usize) {
    let tb = bit(t);
    st.locks.retain(|_, l| {
        if l.ex == Some(t as u8) {
            l.ex = None;
        }
        l.shared &= !tb;
        l.ex.is_some() || l.shared != 0
    });
}

impl SssModel {
    fn has_read_slice(&self, mask: u16) -> Vec<bool> {
        (0..self.cfg.nodes).map(|n| mask & bit(n) != 0).collect()
    }

    fn broadcast(&self, s: &mut SssState, msg: Msg) {
        for n in 0..self.cfg.nodes {
            s.msgs.push(Envelope {
                dst: Dst::Node(n as u8),
                msg: msg.clone(),
            });
        }
    }

    fn to_participants(&self, s: &mut SssState, t: usize, msg: Msg) {
        let parts = self.participants(t);
        for n in 0..self.cfg.nodes {
            if parts & bit(n) != 0 {
                s.msgs.push(Envelope {
                    dst: Dst::Node(n as u8),
                    msg: msg.clone(),
                });
            }
        }
    }

    fn start(&self, s: &mut SssState, t: usize) -> Result<(), String> {
        let origin = self.cfg.txns[t].origin();
        let begin = {
            let st = &s.nodes[origin];
            st.nlog.most_recent_vc().merged(&st.confirmed_vc)
        };
        // External consistency, start side: a transaction beginning after
        // another's external commit must observe a snapshot dominating it.
        for (u, spec) in self.cfg.txns.iter().enumerate() {
            if spec.is_update() && s.clients[u].phase == Phase::Committed {
                if let Some(cvc) = &s.clients[u].commit_vc {
                    if !begin.dominates(cvc) {
                        return Err(format!(
                            "external consistency: t{t} began at n{origin} with a \
                             snapshot that does not dominate externally committed t{u}"
                        ));
                    }
                }
            }
        }
        s.clients[t].vc = begin;
        s.clients[t].phase = Phase::Read;
        if self.cfg.txns[t].reads().is_empty() {
            self.send_prepare(s, t);
        } else {
            self.send_read(s, t);
        }
        Ok(())
    }

    fn send_read(&self, s: &mut SssState, t: usize) {
        let spec = &self.cfg.txns[t];
        let c = &s.clients[t];
        let key = spec.reads()[c.next_read];
        s.msgs.push(Envelope {
            dst: Dst::Node(self.home(key) as u8),
            msg: Msg::ReadReq {
                txn: t as u8,
                key,
                is_update: spec.is_update(),
                vc: c.vc.clone(),
                has_read: c.has_read,
                exclude: c.exclude.clone(),
            },
        });
    }

    fn send_prepare(&self, s: &mut SssState, t: usize) {
        s.clients[t].phase = Phase::Vote;
        let msg = Msg::Prepare {
            txn: t as u8,
            vc: s.clients[t].vc.clone(),
            observed: s.clients[t].observed.clone(),
        };
        self.to_participants(s, t, msg);
    }

    fn deliver(&self, s: &mut SssState, env: Envelope) -> Result<(), String> {
        match env.dst {
            Dst::Node(n) => {
                let i = n as usize;
                if s.dup_budget > 0 && matches!(env.msg, Msg::Prepare { .. }) {
                    // The network duplicates this prepare once: the copy
                    // goes back into flight.
                    s.dup_budget -= 1;
                    s.msgs.push(env.clone());
                }
                match env.msg {
                    Msg::ReadReq {
                        txn,
                        key,
                        is_update,
                        vc,
                        has_read,
                        exclude,
                    } => self.handle_read(s, i, txn, key, is_update, vc, has_read, exclude),
                    Msg::Prepare { txn, vc, observed } => {
                        self.handle_prepare(s, i, txn as usize, vc, observed)
                    }
                    Msg::Decide {
                        txn,
                        ok,
                        vc,
                        propagated,
                    } => self.handle_decide(s, i, txn as usize, ok, vc, propagated),
                    Msg::Confirm {
                        entries,
                        release,
                        remove,
                        leader,
                    } => self.handle_confirm(s, i, entries, release, remove, leader),
                    Msg::ConfirmAck { round, from } => {
                        self.handle_confirm_ack(s, i, round, from);
                        Ok(())
                    }
                    Msg::Release { txns } => self.handle_release(s, i, &txns),
                    Msg::Remove { txns } => {
                        self.handle_remove(s, i, &txns);
                        self.release_unblocked(s, i);
                        Ok(())
                    }
                    Msg::ReadRet { .. } | Msg::Vote { .. } | Msg::ExtAck { .. } => Ok(()),
                }
            }
            Dst::Client(t) => self.client_msg(s, t as usize, env.msg),
        }
    }

    // -- node side ----------------------------------------------------------

    fn handle_read(
        &self,
        s: &mut SssState,
        i: usize,
        txn: u8,
        key: u8,
        is_update: bool,
        vc: Vc,
        has_read: u16,
        exclude: Vec<Arc<Vc>>,
    ) -> Result<(), String> {
        if is_update {
            // Update reads serve the latest installed version at the
            // node's current snapshot and report the squeue's read entries
            // for propagation behind the eventual write.
            let st = &s.nodes[i];
            let snap = st.nlog.most_recent_vc().clone();
            let propagated: Vec<(u8, u64)> = st
                .squeues
                .get(&key)
                .map(|q| {
                    q.reads()
                        .iter()
                        .map(|r| ((r.txn.seq - 1) as u8, r.sid))
                        .collect()
                })
                .unwrap_or_default();
            let ver = st
                .chains
                .get(&key)
                .and_then(|c| c.last())
                .expect("update read targets a replica");
            let writer = ver.writer;
            s.msgs.push(Envelope {
                dst: Dst::Client(txn),
                msg: Msg::ReadRet {
                    txn,
                    key,
                    from: i as u8,
                    writer,
                    vc: snap,
                    excluded: Vec::new(),
                    propagated,
                },
            });
            return Ok(());
        }
        let read = PendingRead {
            txn,
            key,
            vc,
            has_read,
            exclude,
            newly: Vec::new(),
            pinned: false,
        };
        // A node behind the reader's snapshot defers until its log catches
        // up (drained after commit processing).
        let first_here = has_read & bit(i) == 0;
        if first_here && s.nodes[i].nlog.most_recent_vc().get(i) < read.vc.get(i) {
            s.nodes[i].pending_reads.push(read);
            return Ok(());
        }
        self.serve_or_park(s, i, read)
    }

    fn serve_or_park(
        &self,
        s: &mut SssState,
        i: usize,
        mut read: PendingRead,
    ) -> Result<(), String> {
        let t = read.txn as usize;
        let dropped = self.cfg.mutation == Some(Mutation::DroppedExclusionCeiling);
        let mut max_vc;
        if !read.pinned && read.has_read == 0 {
            // First read anywhere: establish the visibility bound, with an
            // exclusion ceiling for every pre-committing writer beyond the
            // begin snapshot.
            let mut newly: Vec<Arc<Vc>> = Vec::new();
            if let Some(q) = s.nodes[i].squeues.get(&read.key) {
                for w in q.writes() {
                    if w.sid > read.vc.get(i) {
                        newly.push(w.commit_vc.clone());
                    }
                }
            }
            // The spec shadow records the ceilings even when the seeded
            // mutation makes the implementation path drop them.
            s.shadow[t].extend(newly.iter().cloned());
            let used: Vec<Arc<Vc>> = if dropped { Vec::new() } else { newly.clone() };
            let has_read = self.has_read_slice(read.has_read);
            max_vc = s.nodes[i].nlog.visible_max(&has_read, &read.vc, &used);
            max_vc.merge(&read.vc);
            if !dropped {
                read.exclude.extend(newly.iter().cloned());
                read.newly = newly;
            }
        } else {
            max_vc = read.vc.clone();
        }
        // Commit-queue ambiguity: an entry at or below the bound may still
        // commit inside it — defer (bound pinned) rather than guess.
        if protocol::commit_queue_blocks_read(s.nodes[i].cq.entries(), i, max_vc.get(i)) {
            read.vc = max_vc;
            read.pinned = true;
            s.nodes[i].pending_reads.push(read);
            return Ok(());
        }
        // Completion-order barrier: enqueue before selecting, unless this
        // reader's Remove already went past.
        if s.nodes[i].removed_ro & bit(t) == 0 {
            s.nodes[i]
                .squeues
                .entry(read.key)
                .or_default()
                .insert_read(tid(t), max_vc.get(i));
        }
        let ver = s.nodes[i]
            .chains
            .get(&read.key)
            .expect("read targets a replica")
            .iter()
            .rev()
            .find(|v| protocol::version_visible(&v.vc, &max_vc, &read.exclude))
            .cloned()
            .expect("the initial version is always visible");
        if let Some(w) = ver.writer {
            let wt = w as usize;
            let st = &s.nodes[i];
            let in_squeue = st
                .squeues
                .get(&read.key)
                .map(|q| q.writes().iter().any(|e| e.txn == tid(wt)))
                .unwrap_or(false);
            let pre_commit = in_squeue || st.pending_global & bit(wt) != 0;
            if pre_commit && st.released & bit(wt) == 0 {
                // The selected writer has not externally committed: park
                // until its ReleaseExternal (completion-order barrier).
                read.vc = max_vc;
                read.pinned = true;
                s.nodes[i].parked_reads.push(Parked { writer: w, read });
                return Ok(());
            }
        }
        // Serve-time invariants.
        if !max_vc.dominates(&ver.vc) {
            return Err(format!(
                "snapshot bound: n{i} served t{t} a version above its visibility bound"
            ));
        }
        if let Some(w) = ver.writer {
            if s.confirmed & bit(w as usize) == 0 {
                return Err(format!(
                    "unconfirmed read: n{i} served t{t} a version of t{w} before \
                     t{w}'s confirmation round completed"
                ));
            }
        }
        if s.shadow[t].iter().any(|c| ver.vc.dominates(c)) {
            return Err(format!(
                "exclusion stability: n{i} served t{t} a version at or above a \
                 ceiling that was excluded for it"
            ));
        }
        s.msgs.push(Envelope {
            dst: Dst::Client(read.txn),
            msg: Msg::ReadRet {
                txn: read.txn,
                key: read.key,
                from: i as u8,
                writer: ver.writer,
                vc: max_vc,
                excluded: read.newly,
                propagated: Vec::new(),
            },
        });
        Ok(())
    }

    fn handle_prepare(
        &self,
        s: &mut SssState,
        i: usize,
        t: usize,
        vc: Vc,
        observed: Vec<(u8, Option<u8>)>,
    ) -> Result<(), String> {
        let tb = bit(t);
        let zero = Vc::new(self.cfg.nodes);
        if s.nodes[i].aborted_early & tb != 0 {
            s.msgs.push(vote(t, i, false, zero));
            return Ok(());
        }
        let dup_mutated = self.cfg.mutation == Some(Mutation::DuplicatePrepare);
        if !dup_mutated && s.nodes[i].prepared_ever & tb != 0 {
            return Ok(()); // duplicate delivery, silently dropped
        }
        s.nodes[i].prepared_ever |= tb;
        let local_writes = self.local_writes(t, i);
        let local_reads: Vec<(u8, Option<u8>)> = observed
            .iter()
            .copied()
            .filter(|(k, _)| self.home(*k) == i)
            .collect();
        {
            // All-or-nothing lock acquisition, idempotent per transaction.
            let st = &mut s.nodes[i];
            let mut needed: Vec<(u8, bool)> = local_writes.iter().map(|&k| (k, true)).collect();
            for (k, _) in &local_reads {
                if !local_writes.contains(k) {
                    needed.push((*k, false));
                }
            }
            let free = needed.iter().all(|&(k, ex)| {
                let l = st.locks.get(&k).copied().unwrap_or_default();
                let no_other_ex = l.ex.map_or(true, |h| h == t as u8);
                if ex {
                    no_other_ex && (l.shared & !tb) == 0
                } else {
                    no_other_ex
                }
            });
            if !free {
                s.msgs.push(vote(t, i, false, zero));
                return Ok(());
            }
            for (k, ex) in needed {
                let l = st.locks.entry(k).or_default();
                if ex {
                    l.ex = Some(t as u8);
                } else {
                    l.shared |= tb;
                }
            }
        }
        // Validate reads against the latest installed version.
        for (k, obs) in &local_reads {
            let latest = s.nodes[i]
                .chains
                .get(k)
                .and_then(|c| c.last())
                .expect("validated read targets a replica");
            if latest.writer != *obs || latest.vc.get(i) > vc.get(i) {
                release_locks(&mut s.nodes[i], t);
                s.msgs.push(vote(t, i, false, zero));
                return Ok(());
            }
        }
        if s.nodes[i].aborted_early & tb != 0 {
            release_locks(&mut s.nodes[i], t);
            s.msgs.push(vote(t, i, false, zero));
            return Ok(());
        }
        let prep_vc = if !local_writes.is_empty() {
            let st = &mut s.nodes[i];
            st.vc.increment(i);
            let proposed = st.vc.clone();
            if st.cq.entries().iter().any(|e| e.txn == tid(t)) {
                // Mutated duplicate re-processing: a second put of the same
                // id would collide, so the bug manifests as a ghost entry.
                let g = TxnId::new(NodeId(0), GHOST_BASE + st.ghosts as u64);
                st.ghosts += 1;
                st.cq.put(g, proposed.clone());
            } else {
                st.cq.put(tid(t), proposed.clone());
            }
            st.prepared.entry(t as u8).or_insert(Prep {
                is_write_replica: true,
                decided: None,
            });
            proposed
        } else {
            let st = &mut s.nodes[i];
            st.prepared.entry(t as u8).or_insert(Prep {
                is_write_replica: false,
                decided: None,
            });
            st.nlog.most_recent_vc().clone()
        };
        s.msgs.push(vote(t, i, true, prep_vc));
        Ok(())
    }

    fn handle_decide(
        &self,
        s: &mut SssState,
        i: usize,
        t: usize,
        ok: bool,
        commit_vc: Vc,
        propagated: Vec<(u8, u64)>,
    ) -> Result<(), String> {
        if !ok {
            let removed = s.nodes[i].prepared.remove(&(t as u8));
            if removed.is_none() && self.cfg.mutation != Some(Mutation::AbortOvertakesPrepare) {
                // Tombstone: a prepare arriving after this abort must be
                // refused. The mutation drops exactly this line.
                s.nodes[i].aborted_early |= bit(t);
            }
            s.nodes[i].cq.remove(tid(t));
            self.process_commit_queue(s, i)?;
            release_locks(&mut s.nodes[i], t);
            return Ok(());
        }
        s.nodes[i].vc.merge(&commit_vc);
        let Some(p) = s.nodes[i].prepared.get_mut(&(t as u8)) else {
            return Ok(()); // stray decide for an unprepared transaction
        };
        if p.is_write_replica {
            p.decided = Some(propagated);
            s.nodes[i].cq.update(tid(t), commit_vc);
            self.process_commit_queue(s, i)?;
        } else {
            s.nodes[i].prepared.remove(&(t as u8));
            release_locks(&mut s.nodes[i], t);
        }
        Ok(())
    }

    fn process_commit_queue(&self, s: &mut SssState, i: usize) -> Result<(), String> {
        while let Some(entry) = s.nodes[i].cq.pop_ready_head() {
            let t = (entry.txn.seq - 1) as usize;
            let commit_vc: Arc<Vc> = Arc::new(entry.vc);
            let prep = s.nodes[i]
                .prepared
                .remove(&(t as u8))
                .expect("committing transaction is prepared");
            let local_writes = self.local_writes(t, i);
            for &k in &local_writes {
                s.nodes[i]
                    .chains
                    .get_mut(&k)
                    .expect("write targets a replica")
                    .push(Version {
                        writer: Some(t as u8),
                        vc: commit_vc.clone(),
                    });
            }
            s.nodes[i].nlog.add(tid(t), commit_vc.clone());
            release_locks(&mut s.nodes[i], t);
            let sid = commit_vc.get(i);
            let removed_ro = s.nodes[i].removed_ro;
            for &k in &local_writes {
                let q = s.nodes[i].squeues.entry(k).or_default();
                q.insert_write(tid(t), sid, commit_vc.clone());
                if let Some(props) = &prep.decided {
                    // Completion-order barrier: the read-only transactions
                    // this writer observed in front of it stay in front.
                    for &(ro, rsid) in props {
                        if removed_ro & bit(ro as usize) == 0 {
                            q.insert_read(tid(ro as usize), rsid);
                        }
                    }
                }
            }
            let blocked = local_writes.iter().any(|k| {
                s.nodes[i]
                    .squeues
                    .get(k)
                    .map(|q| protocol::squeue_blocks_external_commit(q, sid))
                    .unwrap_or(false)
            });
            if blocked {
                s.nodes[i].waiting_external.push((t as u8, commit_vc));
            } else {
                self.complete_external(s, i, t);
            }
        }
        self.drain_pending_reads(s, i)?;
        self.release_unblocked(s, i);
        Ok(())
    }

    fn complete_external(&self, s: &mut SssState, i: usize, t: usize) {
        let st = &mut s.nodes[i];
        if st.released & bit(t) == 0 {
            st.pending_global |= bit(t);
        }
        for k in self.local_writes(t, i) {
            let empty = st
                .squeues
                .get_mut(&k)
                .map(|q| {
                    q.remove_write(tid(t));
                    q.is_empty()
                })
                .unwrap_or(false);
            if empty {
                st.squeues.remove(&k);
            }
        }
        s.msgs.push(Envelope {
            dst: Dst::Client(t as u8),
            msg: Msg::ExtAck {
                txn: t as u8,
                from: i as u8,
            },
        });
    }

    fn release_unblocked(&self, s: &mut SssState, i: usize) {
        let waiting = std::mem::take(&mut s.nodes[i].waiting_external);
        for (t, cvc) in waiting {
            let sid = cvc.get(i);
            let blocked = self.local_writes(t as usize, i).iter().any(|k| {
                s.nodes[i]
                    .squeues
                    .get(k)
                    .map(|q| protocol::squeue_blocks_external_commit(q, sid))
                    .unwrap_or(false)
            });
            if blocked {
                s.nodes[i].waiting_external.push((t, cvc));
            } else {
                self.complete_external(s, i, t as usize);
            }
        }
    }

    fn drain_pending_reads(&self, s: &mut SssState, i: usize) -> Result<(), String> {
        let most = s.nodes[i].nlog.most_recent_vc().get(i);
        let mut ready = Vec::new();
        let mut keep = Vec::new();
        for p in std::mem::take(&mut s.nodes[i].pending_reads) {
            if most >= p.vc.get(i) {
                ready.push(p);
            } else {
                keep.push(p);
            }
        }
        s.nodes[i].pending_reads = keep;
        for p in ready {
            self.serve_or_park(s, i, p)?;
        }
        Ok(())
    }

    fn handle_confirm(
        &self,
        s: &mut SssState,
        i: usize,
        entries: Vec<(u8, Arc<Vc>)>,
        release: Vec<u8>,
        remove: Vec<u8>,
        leader: Dst,
    ) -> Result<(), String> {
        // Removes first — they can unblock waiting external commits.
        self.handle_remove(s, i, &remove);
        {
            let st = &mut s.nodes[i];
            for (_, vc) in &entries {
                st.confirmed_vc.merge(vc);
            }
        }
        let round = entries
            .first()
            .map(|(t, _)| *t)
            .expect("rounds are non-empty");
        let first_copy = s.nodes[i].confirm_acked & bit(round as usize) == 0;
        s.nodes[i].confirm_acked |= bit(round as usize);
        self.handle_release(s, i, &release)?;
        self.release_unblocked(s, i);
        if first_copy {
            s.msgs.push(Envelope {
                dst: leader,
                msg: Msg::ConfirmAck {
                    round,
                    from: i as u8,
                },
            });
        }
        Ok(())
    }

    fn handle_release(&self, s: &mut SssState, i: usize, txns: &[u8]) -> Result<(), String> {
        for &t in txns {
            if s.confirmed & bit(t as usize) == 0 {
                return Err(format!(
                    "release overtook confirmation: n{i} processed t{t}'s \
                     ReleaseExternal before its confirmation round completed"
                ));
            }
        }
        {
            let st = &mut s.nodes[i];
            for &t in txns {
                st.released |= bit(t as usize);
                st.pending_global &= !bit(t as usize);
            }
        }
        let mut unparked = Vec::new();
        s.nodes[i].parked_reads.retain(|p| {
            if txns.contains(&p.writer) {
                unparked.push(p.read.clone());
                false
            } else {
                true
            }
        });
        for read in unparked {
            self.serve_or_park(s, i, read)?;
        }
        Ok(())
    }

    fn handle_remove(&self, s: &mut SssState, i: usize, txns: &[u8]) {
        let st = &mut s.nodes[i];
        for &t in txns {
            st.removed_ro |= bit(t as usize);
            st.squeues.retain(|_, q| {
                q.remove(tid(t as usize));
                !q.is_empty()
            });
        }
    }

    fn handle_confirm_ack(&self, s: &mut SssState, i: usize, round: u8, from: u8) {
        let all = self.all_nodes_mask();
        let Some(r) = s.nodes[i].round.as_mut() else {
            return;
        };
        if r.id != round {
            return;
        }
        r.acks |= bit(from as usize);
        if r.acks != all {
            return;
        }
        let members = r.members.clone();
        s.nodes[i].round = None;
        for &m in &members {
            s.confirmed |= bit(m as usize);
            s.clients[m as usize].phase = Phase::Committed;
        }
        let leftover = s.nodes[i]
            .coal
            .round_completed(members.iter().map(|&m| tid(m as usize)).collect(), true);
        debug_assert!(leftover.is_none(), "piggybacked completion returns nothing");
    }

    fn coalesce(&self, s: &mut SssState, n: usize) {
        let plan = s.nodes[n]
            .coal
            .next_round(self.cfg.confirm_window.max(1), false);
        match plan {
            RoundPlan::Exit | RoundPlan::Linger => {}
            RoundPlan::Flush { release, remove } => {
                let remove: Vec<u8> = remove.iter().map(|t| (t.seq - 1) as u8).collect();
                let release: Vec<u8> = release.iter().map(|t| (t.seq - 1) as u8).collect();
                if !remove.is_empty() {
                    self.broadcast(s, Msg::Remove { txns: remove });
                }
                if !release.is_empty() {
                    self.broadcast(s, Msg::Release { txns: release });
                }
            }
            RoundPlan::Round {
                batch,
                release,
                remove,
            } => {
                let members: Vec<u8> = batch.iter().map(|p| (p.txn.seq - 1) as u8).collect();
                let entries: Vec<(u8, Arc<Vc>)> = batch
                    .iter()
                    .map(|p| ((p.txn.seq - 1) as u8, p.commit_vc.clone()))
                    .collect();
                let release: Vec<u8> = release.iter().map(|t| (t.seq - 1) as u8).collect();
                let remove: Vec<u8> = remove.iter().map(|t| (t.seq - 1) as u8).collect();
                s.nodes[n].round = Some(Round {
                    id: members[0],
                    members: members.clone(),
                    acks: 0,
                });
                self.broadcast(
                    s,
                    Msg::Confirm {
                        entries,
                        release,
                        remove,
                        leader: Dst::Node(n as u8),
                    },
                );
                if self.cfg.mutation == Some(Mutation::PrematureRelease) {
                    // Seeded bug: the release rides out with the round
                    // instead of waiting for its acks.
                    self.broadcast(s, Msg::Release { txns: members });
                }
            }
        }
    }

    // -- client side --------------------------------------------------------

    fn client_msg(&self, s: &mut SssState, t: usize, msg: Msg) -> Result<(), String> {
        match msg {
            Msg::ReadRet {
                key,
                from,
                writer,
                vc,
                excluded,
                propagated,
                ..
            } => self.client_read_ret(s, t, key, from, writer, vc, excluded, propagated),
            Msg::Vote { from, ok, vc, .. } => self.client_vote(s, t, from as usize, ok, vc),
            Msg::ExtAck { from, .. } => {
                self.client_ext_ack(s, t, from as usize);
                Ok(())
            }
            Msg::ConfirmAck { from, .. } => {
                self.client_confirm_ack(s, t, from as usize);
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn client_read_ret(
        &self,
        s: &mut SssState,
        t: usize,
        key: u8,
        from: u8,
        writer: Option<u8>,
        vc: Vc,
        excluded: Vec<Arc<Vc>>,
        propagated: Vec<(u8, u64)>,
    ) -> Result<(), String> {
        if s.clients[t].phase != Phase::Read {
            return Ok(());
        }
        let spec = &self.cfg.txns[t];
        {
            let c = &mut s.clients[t];
            c.vc.merge(&vc);
            c.observed.push((key, writer));
            if spec.is_update() {
                for p in propagated {
                    if !c.propagated.contains(&p) {
                        c.propagated.push(p);
                    }
                }
            } else {
                c.has_read |= bit(from as usize);
                for e in excluded {
                    if !c.exclude.contains(&e) {
                        c.exclude.push(e);
                    }
                }
            }
            c.next_read += 1;
        }
        if s.clients[t].next_read < spec.reads().len() {
            self.send_read(s, t);
        } else if spec.is_update() {
            self.send_prepare(s, t);
        } else {
            self.finish_ro(s, t)?;
        }
        Ok(())
    }

    fn client_vote(
        &self,
        s: &mut SssState,
        t: usize,
        from: usize,
        ok: bool,
        vc: Vc,
    ) -> Result<(), String> {
        {
            let c = &mut s.clients[t];
            if c.phase != Phase::Vote || c.votes & bit(from) != 0 {
                return Ok(());
            }
            c.votes |= bit(from);
            if ok {
                c.vc.merge(&vc);
            }
        }
        if !ok {
            s.clients[t].phase = Phase::Aborted;
            let zero = Vc::new(self.cfg.nodes);
            self.to_participants(
                s,
                t,
                Msg::Decide {
                    txn: t as u8,
                    ok: false,
                    vc: zero,
                    propagated: Vec::new(),
                },
            );
            return Ok(());
        }
        if s.clients[t].votes == self.participants(t) {
            let mut cvc = s.clients[t].vc.clone();
            // xact-vn equalization over the write replicas.
            protocol::finalize_commit_vc(&mut cvc, &self.write_indices(t));
            s.clients[t].commit_vc = Some(Arc::new(cvc.clone()));
            s.clients[t].phase = Phase::ExtWait;
            let props = s.clients[t].propagated.clone();
            self.to_participants(
                s,
                t,
                Msg::Decide {
                    txn: t as u8,
                    ok: true,
                    vc: cvc,
                    propagated: props,
                },
            );
        }
        Ok(())
    }

    fn client_ext_ack(&self, s: &mut SssState, t: usize, from: usize) {
        if s.clients[t].phase != Phase::ExtWait {
            return;
        }
        s.clients[t].ext_acks |= bit(from);
        if s.clients[t].ext_acks != self.write_mask(t) {
            return;
        }
        s.clients[t].phase = Phase::ConfirmWait;
        let cvc = s.clients[t]
            .commit_vc
            .clone()
            .expect("decided commit clock");
        if self.cfg.grouped_confirm {
            let origin = self.cfg.txns[t].origin();
            // Leading is observable as an enabled Coalesce action.
            let _leads = s.nodes[origin].coal.enqueue(tid(t), cvc, ());
        } else {
            self.broadcast(
                s,
                Msg::Confirm {
                    entries: vec![(t as u8, cvc)],
                    release: Vec::new(),
                    remove: Vec::new(),
                    leader: Dst::Client(t as u8),
                },
            );
        }
    }

    fn client_confirm_ack(&self, s: &mut SssState, t: usize, from: usize) {
        if s.clients[t].phase != Phase::ConfirmWait {
            return;
        }
        s.clients[t].confirm_acks |= bit(from);
        if s.clients[t].confirm_acks != self.all_nodes_mask() {
            return;
        }
        s.confirmed |= bit(t);
        s.clients[t].phase = Phase::Committed;
        self.broadcast(
            s,
            Msg::Release {
                txns: vec![t as u8],
            },
        );
    }

    fn finish_ro(&self, s: &mut SssState, t: usize) -> Result<(), String> {
        // External consistency, completion side: a read-only transaction
        // never completes having observed an unconfirmed writer.
        for &(_, w) in &s.clients[t].observed {
            if let Some(w) = w {
                if s.confirmed & bit(w as usize) == 0 {
                    return Err(format!(
                        "external consistency: read-only t{t} completed having \
                         observed t{w}, whose confirmation round has not completed"
                    ));
                }
            }
        }
        s.clients[t].phase = Phase::Committed;
        let origin = self.cfg.txns[t].origin();
        let piggybacked = self.cfg.grouped_confirm && s.nodes[origin].coal.queue_remove(tid(t));
        if !piggybacked {
            self.broadcast(
                s,
                Msg::Remove {
                    txns: vec![t as u8],
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{bfs_check, CheckConfig};

    #[test]
    fn premature_release_yields_a_minimal_counterexample() {
        let model = SssModel::new(ModelConfig::mutated(Mutation::PrematureRelease));
        let report = bfs_check(&model, &CheckConfig::default());
        let cx = report.violation.expect("the seeded bug must be found");
        assert!(cx.invariant.contains("release overtook confirmation"));
        assert!(
            cx.actions.len() <= 40,
            "trace too long: {}",
            cx.actions.len()
        );
    }

    #[test]
    fn single_writer_singleton_confirm_verifies() {
        let cfg = ModelConfig {
            nodes: 2,
            txns: vec![TxnSpec::Update {
                origin: 0,
                reads: vec![],
                writes: vec![0],
            }],
            grouped_confirm: false,
            confirm_window: 1,
            duplicate_prepare_budget: 0,
            mutation: None,
        };
        let report = bfs_check(&SssModel::new(cfg), &CheckConfig::default());
        assert!(report.verified(), "violation: {:?}", report.violation);
    }
}
