//! Conversion of model-checker counterexamples into chaos-harness hints.
//!
//! A counterexample is a minimal *message schedule*: a sequence of client
//! steps and message deliveries. The chaos harness cannot replay an exact
//! schedule (it perturbs a real cluster probabilistically), but it can be
//! pointed at the *fault class* the schedule exploits — a duplicated
//! delivery, a reordered delivery, or plain adversarial delay. This module
//! classifies a trace into that fault class so regression scenarios seeded
//! from checker output (see `sss-bench`'s `mc-*` scenarios) stress the same
//! mechanism the checker proved fragile.

use crate::checker::Counterexample;

/// The network fault class a counterexample's schedule relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The trace delivers the same envelope twice.
    Duplicate,
    /// The trace delivers a later-sent message to a node before an
    /// earlier-sent one (e.g. a `Decide` overtaking its `Prepare`).
    Reorder,
    /// The trace needs only adversarial delay (every delivery is unique and
    /// per-destination send order is respected).
    Delay,
}

/// Chaos-harness guidance distilled from one counterexample.
#[derive(Debug, Clone)]
pub struct ChaosHints {
    /// The fault class the schedule exploits.
    pub fault: FaultKind,
    /// The invariant the trace violates (verbatim from the checker).
    pub invariant: String,
    /// The replayable trace labels, for embedding in scenario docs.
    pub trace: Vec<String>,
}

impl ChaosHints {
    /// Classifies `cx` by scanning its delivery labels (the labels are
    /// produced by the model's `describe` and carry `deliver <Kind> t<i> ->
    /// n<j>` markers).
    pub fn from_counterexample<A>(cx: &Counterexample<A>) -> ChaosHints {
        ChaosHints {
            fault: classify(&cx.labels),
            invariant: cx.invariant.clone(),
            trace: cx.labels.clone(),
        }
    }
}

fn classify(labels: &[String]) -> FaultKind {
    let deliveries: Vec<&String> = labels
        .iter()
        .filter(|l| l.starts_with("deliver "))
        .collect();
    for (i, a) in deliveries.iter().enumerate() {
        if deliveries[i + 1..].contains(a) {
            return FaultKind::Duplicate;
        }
    }
    // A 2PC decision arriving at a node that has not yet seen the matching
    // prepare is the canonical reorder signature.
    for (i, a) in deliveries.iter().enumerate() {
        if let Some((txn, dst)) = parse("Decide", a) {
            let prepare_later = deliveries[i + 1..]
                .iter()
                .any(|b| parse("Prepare", b) == Some((txn.clone(), dst.clone())));
            if prepare_later {
                return FaultKind::Reorder;
            }
        }
    }
    FaultKind::Delay
}

/// Extracts `(txn, dst)` from a `deliver <kind>.. t<i> .. -> n<j>` label.
fn parse(kind: &str, label: &str) -> Option<(String, String)> {
    let rest = label.strip_prefix("deliver ")?;
    if !rest.starts_with(kind) {
        return None;
    }
    let txn = rest
        .split_whitespace()
        .find(|w| w.starts_with('t') && w[1..].chars().all(|c| c.is_ascii_digit()))?;
    let dst = rest.rsplit("-> ").next()?;
    Some((txn.to_string(), dst.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(labels: &[&str]) -> Counterexample<u8> {
        Counterexample {
            invariant: "quiescence".into(),
            actions: vec![0; labels.len()],
            labels: labels.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn duplicate_delivery_classifies_as_duplicate() {
        let hints = ChaosHints::from_counterexample(&cx(&[
            "start t1 (update)",
            "deliver Prepare t1 -> n0",
            "deliver Prepare t1 -> n0",
        ]));
        assert_eq!(hints.fault, FaultKind::Duplicate);
    }

    #[test]
    fn decide_before_prepare_classifies_as_reorder() {
        let hints = ChaosHints::from_counterexample(&cx(&[
            "deliver Decide-abort t1 -> n1",
            "deliver Prepare t1 -> n1",
        ]));
        assert_eq!(hints.fault, FaultKind::Reorder);
    }

    #[test]
    fn unique_in_order_deliveries_classify_as_delay() {
        let hints = ChaosHints::from_counterexample(&cx(&[
            "deliver Prepare t1 -> n0",
            "deliver Vote t1 n0 -> t1",
            "deliver Decide-commit t1 -> n0",
        ]));
        assert_eq!(hints.fault, FaultKind::Delay);
        assert_eq!(hints.invariant, "quiescence");
        assert_eq!(hints.trace.len(), 3);
    }
}
