//! A generic explicit-state BFS model checker.
//!
//! The checker enumerates every state reachable from [`Model::init`] by the
//! actions the model declares enabled, deduplicating states by a canonical
//! 128-bit fingerprint of [`Model::encode`]. Breadth-first order means the
//! first violation found is a *minimal* counterexample (no shorter action
//! sequence reaches one), which keeps the replay traces that seed chaos
//! regression scenarios short.
//!
//! Violations surface through three channels, all treated uniformly:
//!
//! * [`Model::step`] returns `Err` — a step-local invariant (e.g. "a read
//!   was served an unconfirmed version") failed while applying an action;
//! * [`Model::check`] returns `Err` on a freshly discovered state — a
//!   state-global invariant failed;
//! * [`Model::check`] with `terminal == true` returns `Err` on a state with
//!   no enabled actions — a liveness/quiescence obligation failed.

use std::collections::{HashMap, VecDeque};

/// A state machine the checker can explore.
pub trait Model {
    /// One reachable configuration of the system.
    type State: Clone;
    /// One enabled transition. Kept `Copy`-small: the checker stores one per
    /// discovered state for counterexample reconstruction.
    type Action: Copy + std::fmt::Debug;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Appends every enabled action of `state` to `out` (cleared by the
    /// caller). An empty result marks the state terminal.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Applies `action` to `state`. `Err` is an invariant violation observed
    /// while performing the step.
    fn step(&self, state: &Self::State, action: Self::Action) -> Result<Self::State, String>;

    /// Checks state-global invariants; `terminal` is `true` when the state
    /// has no enabled actions (deadlock-freedom / quiescence obligations).
    fn check(&self, state: &Self::State, terminal: bool) -> Result<(), String>;

    /// Writes a canonical byte encoding of the semantically relevant parts
    /// of `state` (used for fingerprint dedup). Two states that encode
    /// equally are treated as the same state.
    fn encode(&self, state: &Self::State, out: &mut Vec<u8>);

    /// A human-readable label for `action` taken from `state` (used in
    /// counterexample traces; may inspect the state to resolve indices).
    fn describe(&self, state: &Self::State, action: Self::Action) -> String;
}

/// Exploration budgets.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Maximum number of unique states to explore before giving up.
    pub max_states: usize,
    /// Maximum BFS depth (actions from the initial state).
    pub max_depth: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 4_000_000,
            max_depth: 256,
        }
    }
}

/// A minimal trace from the initial state to a violation.
#[derive(Debug, Clone)]
pub struct Counterexample<A> {
    /// Which invariant failed.
    pub invariant: String,
    /// The actions to replay, in order.
    pub actions: Vec<A>,
    /// One label per action (resolved against the state it was taken from).
    pub labels: Vec<String>,
}

impl<A> Counterexample<A> {
    /// Renders the trace as a numbered, replayable text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("violated: {}\n", self.invariant));
        for (i, label) in self.labels.iter().enumerate() {
            out.push_str(&format!("{:3}. {label}\n", i + 1));
        }
        out
    }
}

/// Outcome of one exhaustive exploration.
#[derive(Debug)]
pub struct CheckReport<A> {
    /// Unique states discovered (after fingerprint dedup).
    pub unique_states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// Deepest level reached.
    pub max_depth_seen: usize,
    /// `true` when the frontier was exhausted within the budgets: the state
    /// space was covered *completely*.
    pub complete: bool,
    /// The first (minimal) violation found, if any.
    pub violation: Option<Counterexample<A>>,
}

impl<A> CheckReport<A> {
    /// `true` when the exploration was exhaustive and violation-free.
    pub fn verified(&self) -> bool {
        self.complete && self.violation.is_none()
    }
}

/// 128-bit FNV-1a over the canonical encoding; the collision probability at
/// a few million states is far below 1e-18, so fingerprint dedup is sound in
/// practice without retaining full states.
fn fingerprint(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Exhaustively explores `model` breadth-first. See the module docs.
pub fn bfs_check<M: Model>(model: &M, config: &CheckConfig) -> CheckReport<M::Action> {
    // Parent pointers for counterexample reconstruction: one entry per
    // unique state, holding the id of the state it was first reached from
    // and the action that reached it.
    let mut parents: Vec<(u32, Option<M::Action>)> = Vec::new();
    let mut visited: HashMap<u128, u32> = HashMap::new();
    let mut frontier: VecDeque<(u32, usize, M::State)> = VecDeque::new();
    let mut scratch: Vec<u8> = Vec::new();
    let mut actions: Vec<M::Action> = Vec::new();

    let mut report = CheckReport {
        unique_states: 0,
        transitions: 0,
        max_depth_seen: 0,
        complete: false,
        violation: None,
    };

    let init = model.init();
    if let Err(invariant) = model.check(&init, false) {
        report.violation = Some(trace(model, &parents, u32::MAX, None, invariant));
        return report;
    }
    scratch.clear();
    model.encode(&init, &mut scratch);
    visited.insert(fingerprint(&scratch), 0);
    parents.push((u32::MAX, None));
    frontier.push_back((0, 0, init));
    report.unique_states = 1;

    while let Some((id, depth, state)) = frontier.pop_front() {
        report.max_depth_seen = report.max_depth_seen.max(depth);
        actions.clear();
        model.actions(&state, &mut actions);
        if actions.is_empty() {
            if let Err(invariant) = model.check(&state, true) {
                report.violation = Some(trace(model, &parents, id, None, invariant));
                return report;
            }
            continue;
        }
        if depth >= config.max_depth {
            // Depth budget exceeded with actions still enabled: coverage is
            // incomplete, but keep draining the queue (everything left is at
            // the same depth) so `unique_states` stays meaningful.
            continue;
        }
        for &action in actions.iter() {
            report.transitions += 1;
            let next = match model.step(&state, action) {
                Ok(next) => next,
                Err(invariant) => {
                    report.violation = Some(trace(model, &parents, id, Some(action), invariant));
                    return report;
                }
            };
            scratch.clear();
            model.encode(&next, &mut scratch);
            let fp = fingerprint(&scratch);
            if visited.contains_key(&fp) {
                continue;
            }
            if let Err(invariant) = model.check(&next, false) {
                report.violation = Some(trace(model, &parents, id, Some(action), invariant));
                return report;
            }
            let next_id = parents.len() as u32;
            visited.insert(fp, next_id);
            parents.push((id, Some(action)));
            report.unique_states += 1;
            if report.unique_states >= config.max_states {
                return report; // state budget exhausted: incomplete
            }
            frontier.push_back((next_id, depth + 1, next));
        }
    }
    report.complete = report.max_depth_seen < config.max_depth;
    report
}

/// Replays `actions` from the initial state, returning every intermediate
/// state (`result[0]` is the initial state). Panics if the trace does not
/// replay — counterexamples produced by [`bfs_check`] always do, up to and
/// excluding the final (violating) action.
pub fn replay<M: Model>(model: &M, actions: &[M::Action]) -> Vec<M::State> {
    let mut states = vec![model.init()];
    for (i, &action) in actions.iter().enumerate() {
        let last = states.last().expect("at least the initial state");
        match model.step(last, action) {
            Ok(next) => states.push(next),
            Err(_) if i + 1 == actions.len() => break, // violating final step
            Err(e) => panic!("trace failed to replay at step {}: {e}", i + 1),
        }
    }
    states
}

fn trace<M: Model>(
    model: &M,
    parents: &[(u32, Option<M::Action>)],
    last_parent: u32,
    last_action: Option<M::Action>,
    invariant: String,
) -> Counterexample<M::Action> {
    let mut actions: Vec<M::Action> = Vec::new();
    let mut cursor = last_parent;
    if let Some(a) = last_action {
        actions.push(a);
    }
    while cursor != u32::MAX {
        let (parent, action) = &parents[cursor as usize];
        if let Some(a) = action {
            actions.push(*a);
        }
        cursor = *parent;
    }
    actions.reverse();
    // Resolve labels against the replayed pre-states.
    let states = replay(model, &actions);
    let labels = actions
        .iter()
        .enumerate()
        .map(|(i, &a)| model.describe(&states[i.min(states.len() - 1)], a))
        .collect();
    Counterexample {
        invariant,
        actions,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: two counters, each may be bumped to 3; the invariant
    /// forbids both reaching 3 (so a minimal counterexample has 6 steps).
    struct TwoCounters {
        forbid_both: bool,
    }

    impl Model for TwoCounters {
        type State = [u8; 2];
        type Action = usize;

        fn init(&self) -> [u8; 2] {
            [0, 0]
        }

        fn actions(&self, s: &[u8; 2], out: &mut Vec<usize>) {
            for (i, &v) in s.iter().enumerate() {
                if v < 3 {
                    out.push(i);
                }
            }
        }

        fn step(&self, s: &[u8; 2], a: usize) -> Result<[u8; 2], String> {
            let mut next = *s;
            next[a] += 1;
            Ok(next)
        }

        fn check(&self, s: &[u8; 2], terminal: bool) -> Result<(), String> {
            if self.forbid_both && s == &[3, 3] {
                return Err("both counters saturated".into());
            }
            if terminal && s != &[3, 3] {
                return Err("terminated early".into());
            }
            Ok(())
        }

        fn encode(&self, s: &[u8; 2], out: &mut Vec<u8>) {
            out.extend_from_slice(s);
        }

        fn describe(&self, _s: &[u8; 2], a: usize) -> String {
            format!("bump counter {a}")
        }
    }

    #[test]
    fn exhaustive_exploration_dedups_states() {
        let report = bfs_check(&TwoCounters { forbid_both: false }, &CheckConfig::default());
        assert!(report.verified(), "violation: {:?}", report.violation);
        assert_eq!(report.unique_states, 16); // 4 x 4 grid
        assert_eq!(report.max_depth_seen, 6);
    }

    #[test]
    fn violations_yield_minimal_counterexamples() {
        let report = bfs_check(&TwoCounters { forbid_both: true }, &CheckConfig::default());
        let cx = report.violation.expect("must find the violation");
        assert_eq!(cx.actions.len(), 6, "BFS finds a shortest trace");
        assert_eq!(cx.labels.len(), 6);
        assert!(cx.render().contains("both counters saturated"));
        // The trace replays: applying all actions reproduces the bad state.
        let states = replay(&TwoCounters { forbid_both: true }, &cx.actions);
        assert_eq!(states.last().unwrap(), &[3, 3]);
    }

    #[test]
    fn state_budget_truncates_incomplete() {
        let config = CheckConfig {
            max_states: 5,
            max_depth: 256,
        };
        let report = bfs_check(&TwoCounters { forbid_both: false }, &config);
        assert!(!report.complete);
        assert!(report.violation.is_none());
        assert_eq!(report.unique_states, 5);
    }

    #[test]
    fn depth_budget_truncates_incomplete() {
        let config = CheckConfig {
            max_states: 1_000,
            max_depth: 2,
        };
        let report = bfs_check(&TwoCounters { forbid_both: false }, &config);
        assert!(!report.complete);
        assert!(report.unique_states < 16);
    }
}
