//! Runs the same small YCSB-style workload against SSS and the three
//! competitor engines from the paper's evaluation (2PC-baseline, Walter,
//! ROCOCO) and prints a side-by-side summary — a miniature version of the
//! paper's Figure 3 / Figure 6 experiments.
//!
//! Run with: `cargo run --release --example engine_comparison`

use std::time::Duration;

use sss::workload::{KeySelection, WorkloadSpec};
use sss_bench_shim::run_comparison;

// The bench harness lives in the `sss-bench` crate, which is not a
// dependency of the facade crate (it depends on the facade's components the
// other way around). To keep this example self-contained it re-implements
// the tiny comparison loop directly on the engine crates.
mod sss_bench_shim {
    use super::*;
    use sss::baselines::rococo::{RococoCluster, RococoConfig, RococoReadOutcome};
    use sss::baselines::twopc::{TwoPcCluster, TwoPcConfig, TwoPcOutcome};
    use sss::baselines::walter::{WalterCluster, WalterConfig, WalterOutcome};
    use sss::core::{SssCluster, SssConfig};
    use sss::storage::{Key, Value};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    /// Outcome counters for one engine run.
    pub struct Summary {
        pub name: &'static str,
        pub committed: u64,
        pub aborted: u64,
        pub elapsed: Duration,
    }

    impl Summary {
        pub fn throughput(&self) -> f64 {
            self.committed as f64 / self.elapsed.as_secs_f64()
        }
    }

    fn drive<F>(name: &'static str, spec: &WorkloadSpec, run_one: F) -> Summary
    where
        F: Fn(usize, &[Key], &[(Key, Value)], bool) -> bool + Sync,
    {
        let committed = AtomicU64::new(0);
        let aborted = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for node in 0..spec.nodes {
                for client in 0..spec.clients_per_node {
                    let committed = &committed;
                    let aborted = &aborted;
                    let stop = &stop;
                    let run_one = &run_one;
                    scope.spawn(move || {
                        let mut generator =
                            sss::workload::WorkloadGenerator::new(spec, node.into(), client);
                        while !stop.load(Ordering::Relaxed) {
                            let template = generator.next_txn();
                            let (keys, writes, read_only) = match &template {
                                sss::workload::TxnTemplate::ReadOnly { keys } => {
                                    (keys.clone(), Vec::new(), true)
                                }
                                sss::workload::TxnTemplate::Update { keys, values } => (
                                    keys.clone(),
                                    keys.iter().cloned().zip(values.iter().cloned()).collect(),
                                    false,
                                ),
                            };
                            if run_one(node, &keys, &writes, read_only) {
                                committed.fetch_add(1, Ordering::Relaxed);
                            } else {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            }
            let stop = &stop;
            scope.spawn(move || {
                std::thread::sleep(spec.duration);
                stop.store(true, Ordering::Relaxed);
            });
        });
        Summary {
            name,
            committed: committed.load(Ordering::Relaxed),
            aborted: aborted.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
        }
    }

    /// Runs the comparison and returns one summary per engine.
    pub fn run_comparison(spec: &WorkloadSpec) -> Vec<Summary> {
        let mut results = Vec::new();

        let sss = SssCluster::start(SssConfig::new(spec.nodes).replication(2))
            .expect("failed to start SSS");
        results.push(drive("SSS", spec, |node, keys, writes, read_only| {
            let session = sss.session(node);
            if read_only {
                let mut txn = session.begin_read_only();
                for k in keys {
                    if txn.read(k.clone()).is_err() {
                        return false;
                    }
                }
                txn.commit().is_ok()
            } else {
                let mut txn = session.begin_update();
                for k in keys {
                    if txn.read(k.clone()).is_err() {
                        return false;
                    }
                }
                for (k, v) in writes {
                    txn.write(k.clone(), v.clone());
                }
                txn.commit().is_ok()
            }
        }));
        sss.shutdown();

        let twopc = Arc::new(TwoPcCluster::start(TwoPcConfig::new(spec.nodes).replication(2)));
        results.push(drive("2PC", spec, |node, keys, writes, _read_only| {
            matches!(
                twopc.session(node).execute(keys, writes).0,
                TwoPcOutcome::Committed
            )
        }));
        twopc.shutdown();

        let walter = Arc::new(WalterCluster::start(WalterConfig::new(spec.nodes).replication(2)));
        results.push(drive("Walter", spec, |node, keys, writes, read_only| {
            let session = walter.session(node);
            if read_only {
                session.read_only(keys).is_some()
            } else {
                matches!(session.update(keys, writes).0, WalterOutcome::Committed)
            }
        }));
        walter.shutdown();

        let rococo = Arc::new(RococoCluster::start(RococoConfig::new(spec.nodes)));
        results.push(drive("ROCOCO", spec, |node, keys, writes, read_only| {
            let session = rococo.session(node);
            if read_only {
                matches!(session.read_only(keys).0, RococoReadOutcome::Committed)
            } else {
                session.update(writes)
            }
        }));
        rococo.shutdown();

        results
    }
}

fn main() {
    let spec = WorkloadSpec::new(4)
        .clients_per_node(4)
        .total_keys(1_024)
        .read_only_percent(80)
        .key_selection(KeySelection::Uniform)
        .duration(Duration::from_millis(400));

    println!(
        "workload: {} nodes, {} clients/node, {} keys, {}% read-only\n",
        spec.nodes, spec.clients_per_node, spec.total_keys, spec.read_only_percent
    );
    println!("{:<8} {:>12} {:>10} {:>12}", "engine", "commits/s", "aborts", "committed");
    for summary in run_comparison(&spec) {
        println!(
            "{:<8} {:>12.0} {:>10} {:>12}",
            summary.name,
            summary.throughput(),
            summary.aborted,
            summary.committed
        );
    }
    println!("\nFor the full evaluation sweeps run: cargo run -p sss-bench --release --bin all_figures");
}
